// Multi-tenant isolation: per-tenant derived keys, cross-tenant
// verification failure (engines and spliced units), and tamper/replay
// detection while the server is under concurrent load.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "crypto/attacks.h"
#include "crypto/kdf.h"
#include "serve/server.h"

namespace seda::serve {
namespace {

using core::Secure_memory;
using core::Verify_status;

constexpr Bytes k_unit_bytes = 64;

std::vector<u8> make_key(u64 seed)
{
    Rng rng(seed);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

std::vector<u8> unit_data(u64 seed)
{
    Rng rng(seed);
    std::vector<u8> data(k_unit_bytes);
    for (auto& b : data) b = rng.next_byte();
    return data;
}

Request write_request(u32 tenant, Addr addr, std::vector<u8> payload)
{
    Request r;
    r.tenant_id = tenant;
    r.op = Op::write;
    r.addr = addr;
    r.payload = std::move(payload);
    r.layer_id = tenant;
    return r;
}

Request read_request(u32 tenant, Addr addr)
{
    Request r;
    r.tenant_id = tenant;
    r.op = Op::read;
    r.addr = addr;
    r.layer_id = tenant;
    return r;
}

TEST(TenantIsolation, DerivedKeysAreDistinctAndDeterministic)
{
    const auto enc = make_key(1);
    const auto mac = make_key(2);
    runtime::Thread_pool pool(1);
    Tenant a(0, enc, mac, {}, pool);
    Tenant b(1, enc, mac, {}, pool);

    // Distinct from each other, from the master, and across roles.
    const std::vector<u8> a_enc(a.enc_key().begin(), a.enc_key().end());
    const std::vector<u8> b_enc(b.enc_key().begin(), b.enc_key().end());
    const std::vector<u8> a_mac(a.mac_key().begin(), a.mac_key().end());
    EXPECT_NE(a_enc, b_enc);
    EXPECT_NE(a_enc, enc);
    EXPECT_NE(a_mac, a_enc);

    // Same (master, id) derives the same keys: sessions are reconnectable.
    Tenant a2(0, enc, mac, {}, pool);
    EXPECT_EQ(a_enc, std::vector<u8>(a2.enc_key().begin(), a2.enc_key().end()));
}

TEST(TenantIsolation, KdfSeparatesLabelsAndIds)
{
    const auto master = make_key(3);
    const auto k1 = crypto::derive_key(master, "label-a", 7);
    EXPECT_NE(k1, crypto::derive_key(master, "label-b", 7));
    EXPECT_NE(k1, crypto::derive_key(master, "label-a", 8));
    EXPECT_EQ(k1, crypto::derive_key(master, "label-a", 7));
    EXPECT_EQ(crypto::derive_key(master, "label-a", 7, 32).size(), 32u);
    EXPECT_THROW((void)crypto::derive_key(master, "x", 0, 33), Seda_error);
    EXPECT_THROW((void)crypto::derive_key(master, "x", 0, 0), Seda_error);
    EXPECT_THROW((void)crypto::derive_key({}, "x", 0), Seda_error);
}

TEST(TenantIsolation, CrossTenantEnginesFailMacVerification)
{
    const auto enc = make_key(4);
    const auto mac = make_key(5);
    runtime::Thread_pool pool(2);
    Tenant a(0, enc, mac, {}, pool);
    Tenant b(1, enc, mac, {}, pool);

    constexpr Addr addr = 0x1000;
    const auto data = unit_data(11);
    b.session().memory().write(addr, data, 1, 0, 0);

    // Tenant A's engines in front of tenant B's stored unit: the MAC was
    // minted under B's key, so A must see mac_mismatch -- and must NOT get
    // plaintext out.
    const crypto::Baes_engine a_baes(a.enc_key());
    const crypto::Hmac_engine a_hmac(a.mac_key());
    std::vector<crypto::Block16> pads;
    std::vector<u8> out(k_unit_bytes, 0xAA);
    const Secure_memory::Unit_read r{addr, out, 1, 0, 0};
    EXPECT_EQ(b.session().memory().read_with(r, a_baes, a_hmac, pads),
              Verify_status::mac_mismatch);
    EXPECT_EQ(out, std::vector<u8>(k_unit_bytes, 0xAA));  // untouched

    // B's own engines still verify.
    const crypto::Baes_engine b_baes(b.enc_key());
    const crypto::Hmac_engine b_hmac(b.mac_key());
    EXPECT_EQ(b.session().memory().read_with(r, b_baes, b_hmac, pads), Verify_status::ok);
    EXPECT_EQ(out, data);
}

TEST(TenantIsolation, SplicedUnitFromOtherTenantFailsVerification)
{
    const auto enc = make_key(6);
    const auto mac = make_key(7);
    runtime::Thread_pool pool(2);
    Tenant a(0, enc, mac, {}, pool);
    Tenant b(1, enc, mac, {}, pool);

    // Same address in both tenants' (disjoint) memories.
    constexpr Addr addr = 0x2000;
    a.session().memory().write(addr, unit_data(21), 1, 0, 0);
    b.session().memory().write(addr, unit_data(22), 1, 0, 0);

    // Bus adversary splices B's stored unit into A's memory wholesale
    // (the same primitive the attack campaign's splice fault uses).
    crypto::splice_unit(a.session().memory(), addr, b.session().memory(), addr);

    std::vector<u8> out(k_unit_bytes);
    EXPECT_EQ(a.session().memory().read(addr, out, 1, 0, 0), Verify_status::mac_mismatch);
}

TEST(TenantIsolation, TamperAndReplayAreCaughtUnderConcurrentLoad)
{
    Server_config cfg;
    cfg.tenants = 3;
    cfg.workers = 4;
    Server server(make_key(8), make_key(9), cfg);
    server.start();

    // Seed every tenant's unit 0 and 1, then prepare the two attacks:
    // tamper tenant 0's unit, replay (rollback) tenant 1's unit.
    for (u32 t = 0; t < 3; ++t) {
        server.submit(write_request(t, 0, unit_data(100 + t))).get();
        server.submit(write_request(t, 64, unit_data(200 + t))).get();
    }
    const auto old = server.tenant(1).session().memory().snapshot(64);
    server.submit(write_request(1, 64, unit_data(999))).get();

    server.tenant(0).session().memory().tamper(0, 3, 0x80);
    server.tenant(1).session().memory().rollback(64, old);

    // Concurrent load: every tenant's clean unit read many times from
    // several threads while the two poisoned reads are in flight.
    std::vector<std::thread> load;
    std::atomic<u64> clean_not_ok{0};
    for (int th = 0; th < 4; ++th)
        load.emplace_back([&] {
            for (int i = 0; i < 50; ++i)
                for (u32 t = 0; t < 3; ++t) {
                    const Addr addr = (t == 0) ? 64 : 0;  // avoid the poisoned units
                    if (server.submit(read_request(t, addr)).get().status !=
                        Verify_status::ok)
                        ++clean_not_ok;
                }
        });

    const Response tampered = server.submit(read_request(0, 0)).get();
    const Response replayed = server.submit(read_request(1, 64)).get();
    for (auto& t : load) t.join();
    server.drain();

    EXPECT_EQ(tampered.status, Verify_status::mac_mismatch);
    EXPECT_TRUE(tampered.payload.empty());
    EXPECT_EQ(replayed.status, Verify_status::replay_detected);
    EXPECT_EQ(clean_not_ok, 0u);

    const auto stats = server.stats();
    EXPECT_EQ(stats.tenants[0].mac_mismatch, 1u);
    EXPECT_EQ(stats.tenants[1].replay_detected, 1u);
    EXPECT_EQ(stats.tenants[2].mac_mismatch + stats.tenants[2].replay_detected, 0u);

    // Exact attribution: each failure record names the unit, the bound MAC
    // context (write_request binds layer_id = tenant) and the failure
    // class -- and no tenant logged anything beyond its one poisoned read.
    ASSERT_EQ(stats.tenants[0].failures.size(), 1u);
    EXPECT_EQ(stats.tenants[0].failures[0],
              (Failure_record{0, 0, 0, 0, Verify_status::mac_mismatch}));
    ASSERT_EQ(stats.tenants[1].failures.size(), 1u);
    EXPECT_EQ(stats.tenants[1].failures[0],
              (Failure_record{64, 1, 0, 0, Verify_status::replay_detected}));
    EXPECT_TRUE(stats.tenants[2].failures.empty());
}

}  // namespace
}  // namespace seda::serve
