// Bounded MPMC admission queue: capacity/backpressure, FIFO, batch pops,
// close semantics, and a concurrency smoke the TSan job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/error.h"
#include "serve/admission_queue.h"

namespace seda::serve {
namespace {

Request make_request(u64 seq)
{
    Request r;
    r.seq = seq;
    return r;
}

TEST(AdmissionQueue, CapacityIsEnforcedAndTryPushSheds)
{
    Admission_queue q(2);
    Request a = make_request(1), b = make_request(2), c = make_request(3);
    EXPECT_TRUE(q.try_push(a));
    EXPECT_TRUE(q.try_push(b));
    EXPECT_FALSE(q.try_push(c));  // full: rejected, c intact
    EXPECT_EQ(c.seq, 3u);
    EXPECT_EQ(q.size(), 2u);

    std::vector<Request> out;
    EXPECT_EQ(q.pop_batch(out, 1), 1u);
    EXPECT_TRUE(q.try_push(c));  // space freed
    EXPECT_EQ(q.size(), 2u);
}

TEST(AdmissionQueue, PopBatchIsFifoAndBounded)
{
    Admission_queue q(8);
    for (u64 i = 0; i < 5; ++i) {
        Request r = make_request(i);
        ASSERT_TRUE(q.push(r));
    }
    std::vector<Request> out;
    EXPECT_EQ(q.pop_batch(out, 3), 3u);
    EXPECT_EQ(q.pop_batch(out, 3), 2u);
    ASSERT_EQ(out.size(), 5u);
    for (u64 i = 0; i < 5; ++i) EXPECT_EQ(out[i].seq, i);
}

TEST(AdmissionQueue, BlockedPushWakesWhenSpaceFrees)
{
    Admission_queue q(1);
    Request first = make_request(0);
    ASSERT_TRUE(q.push(first));

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        Request second = make_request(1);
        EXPECT_TRUE(q.push(second));  // blocks until the pop below
        pushed = true;
    });

    std::vector<Request> out;
    EXPECT_EQ(q.pop_batch(out, 1), 1u);
    producer.join();
    EXPECT_TRUE(pushed);
    EXPECT_EQ(q.size(), 1u);
}

TEST(AdmissionQueue, CloseDrainsAcceptedThenSignalsShutdown)
{
    Admission_queue q(8);
    for (u64 i = 0; i < 3; ++i) {
        Request r = make_request(i);
        ASSERT_TRUE(q.push(r));
    }
    q.close();
    Request late = make_request(99);
    EXPECT_FALSE(q.push(late));
    EXPECT_FALSE(q.try_push(late));
    EXPECT_EQ(late.seq, 99u);  // rejected pushes leave the request intact

    std::vector<Request> out;
    EXPECT_EQ(q.pop_batch(out, 16), 3u);  // accepted requests still drain
    EXPECT_EQ(q.pop_batch(out, 16), 0u);  // then the shutdown signal
}

TEST(AdmissionQueue, CloseWakesBlockedProducer)
{
    Admission_queue q(1);
    Request first = make_request(0);
    ASSERT_TRUE(q.push(first));

    std::thread producer([&] {
        Request second = make_request(1);
        EXPECT_FALSE(q.push(second));  // blocked full, then closed
    });
    // Give the producer a moment to block, then close.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    producer.join();
}

TEST(AdmissionQueue, MaxWaitReleasesLoneRequestAfterWindow)
{
    Admission_queue q(8);
    Request r = make_request(7);
    ASSERT_TRUE(q.push(r));
    std::vector<Request> out;
    const auto t0 = std::chrono::steady_clock::now();
    // A lone request must come back once the window expires -- not be held
    // hostage waiting for a batch that never fills.
    EXPECT_EQ(q.pop_batch(out, 4, std::chrono::microseconds(20'000)), 1u);
    const auto waited = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(waited, std::chrono::seconds(5));
    EXPECT_EQ(out.front().seq, 7u);
}

TEST(AdmissionQueue, MaxWaitGathersLateArrivalsIntoOneWindow)
{
    Admission_queue q(8);
    Request first = make_request(0);
    ASSERT_TRUE(q.push(first));

    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        for (u64 i = 1; i < 4; ++i) {
            Request r = make_request(i);
            ASSERT_TRUE(q.push(r));
        }
    });
    // A generous window: the late arrivals land well inside it, so one pop
    // returns the full batch (and returns as soon as `max` is reached --
    // nowhere near the 10 s window).
    std::vector<Request> out;
    EXPECT_EQ(q.pop_batch(out, 4, std::chrono::seconds(10)), 4u);
    producer.join();
    for (u64 i = 0; i < 4; ++i) EXPECT_EQ(out[i].seq, i);
}

TEST(AdmissionQueue, CloseCutsMaxWaitWindowShort)
{
    Admission_queue q(8);
    Request r = make_request(1);
    ASSERT_TRUE(q.push(r));
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        q.close();
    });
    std::vector<Request> out;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(q.pop_batch(out, 4, std::chrono::seconds(30)), 1u);
    EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(15));
    closer.join();
}

TEST(AdmissionQueue, MaxWaitWindowStillWakesBlockedProducers)
{
    // The consumer's drain frees capacity; a producer blocked on a full
    // queue must be woken DURING the window, not after it.
    Admission_queue q(1);
    Request first = make_request(0);
    ASSERT_TRUE(q.push(first));
    std::thread producer([&] {
        Request second = make_request(1);
        ASSERT_TRUE(q.push(second));  // blocked full until the pop drains
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::vector<Request> out;
    // max = 2: the window completes as soon as the unblocked producer's
    // request lands, long before the 30 s deadline.
    EXPECT_EQ(q.pop_batch(out, 2, std::chrono::seconds(30)), 2u);
    producer.join();
    EXPECT_EQ(out[0].seq, 0u);
    EXPECT_EQ(out[1].seq, 1u);
}

TEST(AdmissionQueue, InvalidConfigThrows)
{
    EXPECT_THROW(Admission_queue q(0), Seda_error);
    Admission_queue q(1);
    std::vector<Request> out;
    EXPECT_THROW((void)q.pop_batch(out, 0), Seda_error);
}

TEST(AdmissionQueue, ConcurrentProducersConsumersDeliverExactlyOnce)
{
    constexpr std::size_t k_producers = 4;
    constexpr std::size_t k_consumers = 3;
    constexpr u64 k_per_producer = 200;
    Admission_queue q(16);  // small capacity: backpressure actually engages

    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < k_producers; ++p)
        producers.emplace_back([&q, p] {
            for (u64 i = 0; i < k_per_producer; ++i) {
                Request r = make_request(p * k_per_producer + i);
                ASSERT_TRUE(q.push(r));
            }
        });

    std::mutex mu;
    std::set<u64> seen;
    std::vector<std::thread> consumers;
    for (std::size_t c = 0; c < k_consumers; ++c)
        consumers.emplace_back([&] {
            std::vector<Request> out;
            while (q.pop_batch(out, 7) != 0) {
                std::lock_guard lock(mu);
                for (const Request& r : out) EXPECT_TRUE(seen.insert(r.seq).second);
                out.clear();
            }
        });

    for (auto& t : producers) t.join();
    q.close();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(seen.size(), k_producers * k_per_producer);
}

}  // namespace
}  // namespace seda::serve
