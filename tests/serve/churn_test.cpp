// Tenant churn on a live server: add_tenant / evict_tenant, in-flight
// completion across eviction, counted rejections, and a concurrency smoke
// the TSan job runs.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "serve/server.h"

namespace seda::serve {
namespace {

using core::Verify_status;

constexpr Bytes k_unit_bytes = 64;

std::vector<u8> make_key(u64 seed)
{
    Rng rng(seed);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

std::vector<u8> unit_data(u64 seed)
{
    Rng rng(seed);
    std::vector<u8> data(k_unit_bytes);
    for (auto& b : data) b = rng.next_byte();
    return data;
}

Request make_request(u32 tenant, Op op, Addr addr, std::vector<u8> payload = {})
{
    Request r;
    r.tenant_id = tenant;
    r.op = op;
    r.addr = addr;
    r.payload = std::move(payload);
    return r;
}

TEST(ServeChurn, AddTenantOnLiveServerServesImmediately)
{
    Server server(make_key(1), make_key(2), {.tenants = 1, .workers = 2});
    server.start();
    (void)server.submit(make_request(0, Op::write, 0, unit_data(1))).get();

    const u32 fresh = server.add_tenant();
    EXPECT_EQ(fresh, 1u);
    EXPECT_EQ(server.tenant_count(), 2u);

    const auto data = unit_data(9);
    EXPECT_EQ(server.submit(make_request(fresh, Op::write, 64, data)).get().status,
              Verify_status::ok);
    const Response rd = server.submit(make_request(fresh, Op::read, 64)).get();
    EXPECT_EQ(rd.status, Verify_status::ok);
    EXPECT_EQ(rd.payload, data);

    server.drain();
    const auto stats = server.stats();
    ASSERT_GE(stats.tenants.size(), 2u);
    EXPECT_EQ(stats.tenants[fresh].writes, 1u);
    EXPECT_EQ(stats.tenants[fresh].reads, 1u);
    server.stop();
}

TEST(ServeChurn, AddedTenantsUseDistinctKeys)
{
    Server server(make_key(1), make_key(2), {.tenants = 1});
    const u32 fresh = server.add_tenant();
    const auto as_vec = [](std::span<const u8> s) {
        return std::vector<u8>(s.begin(), s.end());
    };
    EXPECT_NE(as_vec(server.tenant(0).enc_key()), as_vec(server.tenant(fresh).enc_key()));
    EXPECT_NE(as_vec(server.tenant(0).mac_key()), as_vec(server.tenant(fresh).mac_key()));
}

TEST(ServeChurn, EvictedTenantRejectsNewSubmitsWithCountedStatus)
{
    Server server(make_key(1), make_key(2), {.tenants = 2});
    server.start();
    (void)server.submit(make_request(1, Op::write, 0, unit_data(3))).get();

    server.evict_tenant(1);
    EXPECT_THROW((void)server.submit(make_request(1, Op::read, 0)), Seda_error);
    EXPECT_THROW((void)server.submit(make_request(1, Op::write, 64, unit_data(4))),
                 Seda_error);
    EXPECT_EQ(server.stats().evicted_rejects, 2u);

    // The other tenant is unaffected.
    EXPECT_EQ(server.submit(make_request(0, Op::write, 0, unit_data(5))).get().status,
              Verify_status::ok);
    // An id that never existed is a usage error, not a counted eviction.
    EXPECT_THROW((void)server.submit(make_request(7, Op::read, 0)), Seda_error);
    EXPECT_EQ(server.stats().evicted_rejects, 2u);
    server.stop();
}

TEST(ServeChurn, InFlightRequestsCompleteAcrossEviction)
{
    // Fill the queue with tenant-1 traffic, evict mid-stream, and require
    // every future already handed out to complete with its value.
    Server server(make_key(1), make_key(2), {.tenants = 2, .workers = 2});
    server.start();

    const auto data = unit_data(11);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(
            server.submit(make_request(1, Op::write, static_cast<Addr>(i) * 64, data)));
    server.evict_tenant(1);
    for (auto& f : futures) EXPECT_EQ(f.get().status, Verify_status::ok);

    server.drain();
    const auto stats = server.stats();
    EXPECT_EQ(stats.tenants[1].writes, 64u);
    EXPECT_EQ(stats.tenants[1].ok, 64u);
    server.stop();
}

TEST(ServeChurn, EvictIsIdempotentAndUnknownIdThrows)
{
    Server server(make_key(1), make_key(2), {.tenants = 1});
    server.evict_tenant(0);
    server.evict_tenant(0);  // idempotent
    EXPECT_THROW(server.evict_tenant(3), Seda_error);
}

TEST(ServeChurn, ConcurrentChurnAndTrafficSmoke)
{
    // Adds, evictions, and closed-loop traffic racing on a live server;
    // every future completes and counters stay coherent (TSan coverage).
    Server server(make_key(1), make_key(2), {.tenants = 2, .workers = 2});
    server.start();

    std::thread churner([&] {
        for (int i = 0; i < 8; ++i) {
            const u32 id = server.add_tenant();
            (void)server.submit(make_request(id, Op::write, 0, unit_data(id))).get();
            server.evict_tenant(id);
        }
    });
    std::vector<std::thread> clients;
    for (u32 t = 0; t < 2; ++t)
        clients.emplace_back([&server, t] {
            const auto data = unit_data(100 + t);
            for (int i = 0; i < 64; ++i) {
                const Addr addr = static_cast<Addr>(i % 8) * 64;
                ASSERT_EQ(server.submit(make_request(t, Op::write, addr, data))
                              .get()
                              .status,
                          Verify_status::ok);
                ASSERT_EQ(server.submit(make_request(t, Op::read, addr)).get().status,
                          Verify_status::ok);
            }
        });
    churner.join();
    for (auto& c : clients) c.join();

    server.drain();
    const auto stats = server.stats();
    EXPECT_EQ(stats.tenants[0].writes + stats.tenants[0].reads, 128u);
    EXPECT_EQ(stats.tenants[1].writes + stats.tenants[1].reads, 128u);
    for (u32 id = 2; id < 10; ++id) EXPECT_EQ(stats.tenants[id].ok, 1u) << id;
    EXPECT_EQ(server.stats().evicted_rejects, 0u);
    server.stop();
}

}  // namespace
}  // namespace seda::serve
