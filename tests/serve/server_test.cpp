// serve::Server: lifecycle, round trips, batching correctness under
// concurrent clients, malformed-request containment, and stats.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "serve/server.h"

namespace seda::serve {
namespace {

using core::Verify_status;

constexpr Bytes k_unit_bytes = 64;

std::vector<u8> make_key(u64 seed)
{
    Rng rng(seed);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

std::vector<u8> unit_data(u64 seed)
{
    Rng rng(seed);
    std::vector<u8> data(k_unit_bytes);
    for (auto& b : data) b = rng.next_byte();
    return data;
}

Request make_request(u32 tenant, Op op, Addr addr, std::vector<u8> payload = {})
{
    Request r;
    r.tenant_id = tenant;
    r.op = op;
    r.addr = addr;
    r.payload = std::move(payload);
    return r;
}

TEST(ServeServer, WriteThenReadRoundTrips)
{
    Server server(make_key(1), make_key(2), {.tenants = 2, .workers = 2});
    server.start();

    const auto data = unit_data(5);
    const Response wr = server.submit(make_request(0, Op::write, 128, data)).get();
    EXPECT_EQ(wr.status, Verify_status::ok);
    EXPECT_TRUE(wr.payload.empty());

    const Response rd = server.submit(make_request(0, Op::read, 128)).get();
    EXPECT_EQ(rd.status, Verify_status::ok);
    EXPECT_EQ(rd.payload, data);
    server.drain();
    server.stop();
}

TEST(ServeServer, LifecycleStopIsTerminalAndIdempotent)
{
    Server server(make_key(1), make_key(2), {.tenants = 1});
    EXPECT_THROW((void)server.submit(make_request(0, Op::write, 0, unit_data(1))),
                 Seda_error);  // not started
    server.start();
    EXPECT_THROW(server.start(), Seda_error);  // once only
    (void)server.submit(make_request(0, Op::write, 0, unit_data(1))).get();
    server.stop();
    server.stop();  // idempotent
    EXPECT_THROW((void)server.submit(make_request(0, Op::read, 0)), Seda_error);
    EXPECT_THROW(server.start(), Seda_error);  // terminal: no restart
    server.drain();  // everything accepted has completed; returns immediately
}

TEST(ServeServer, MalformedRequestsAreRejectedAtSubmit)
{
    Server server(make_key(1), make_key(2), {.tenants = 1});
    server.start();
    // Unknown tenant, misaligned address, wrong payload size.
    EXPECT_THROW((void)server.submit(make_request(7, Op::write, 0, unit_data(1))),
                 Seda_error);
    EXPECT_THROW((void)server.submit(make_request(0, Op::write, 3, unit_data(1))),
                 Seda_error);
    EXPECT_THROW((void)server.submit(make_request(0, Op::write, 0, {1, 2, 3})),
                 Seda_error);
    // The server still serves after rejecting garbage.
    const auto data = unit_data(2);
    EXPECT_EQ(server.submit(make_request(0, Op::write, 0, data)).get().status,
              Verify_status::ok);
}

TEST(ServeServer, PoisonReadFailsItsRequestOnlyAndCountsRejected)
{
    Server server(make_key(1), make_key(2), {.tenants = 1, .workers = 2});
    server.start();

    const auto data = unit_data(3);
    (void)server.submit(make_request(0, Op::write, 0, data)).get();

    // A read of a never-written unit is a usage error: it must surface on
    // THAT request's future and leave the server serving.  Submit the good
    // and poisoned reads together so they coalesce into one batch and
    // exercise the per-request fallback.
    auto good1 = server.submit(make_request(0, Op::read, 0));
    auto poison = server.submit(make_request(0, Op::read, 64 * 99));
    auto good2 = server.submit(make_request(0, Op::read, 0));

    EXPECT_EQ(good1.get().status, Verify_status::ok);
    EXPECT_THROW((void)poison.get(), Seda_error);
    EXPECT_EQ(good2.get().payload, data);

    server.drain();
    const auto stats = server.stats();
    EXPECT_EQ(stats.tenants[0].rejected, 1u);
    EXPECT_EQ(stats.tenants[0].reads, 3u);
    EXPECT_EQ(stats.tenants[0].ok, 3u);  // 1 write + 2 good reads
}

TEST(ServeServer, ConcurrentClosedLoopClientsStayConsistent)
{
    constexpr u32 k_clients = 6;
    constexpr std::size_t k_rounds = 40;
    Server server(make_key(4), make_key(5), {.tenants = 2, .workers = 4});
    server.start();

    std::vector<std::thread> clients;
    std::vector<u64> failures(k_clients, 0);
    for (u32 c = 0; c < k_clients; ++c)
        clients.emplace_back([&server, &failures, c] {
            const u32 tenant = c % 2;
            const Addr base = static_cast<Addr>(c) * 8 * k_unit_bytes;
            std::vector<u8> expected;
            Rng rng(c + 100);
            for (std::size_t r = 0; r < k_rounds; ++r) {
                const Addr addr = base + (rng.next_below(8)) * k_unit_bytes;
                std::vector<u8> data(k_unit_bytes);
                for (auto& b : data) b = rng.next_byte();
                if (server.submit(make_request(tenant, Op::write, addr, data))
                        .get()
                        .status != Verify_status::ok)
                    ++failures[c];
                const Response rd =
                    server.submit(make_request(tenant, Op::read, addr)).get();
                if (rd.status != Verify_status::ok || rd.payload != data) ++failures[c];
            }
        });
    for (auto& t : clients) t.join();
    server.drain();

    for (u32 c = 0; c < k_clients; ++c) EXPECT_EQ(failures[c], 0u) << "client " << c;

    const auto stats = server.stats();
    const auto totals = stats.totals();
    EXPECT_EQ(stats.requests, k_clients * k_rounds * 2);
    EXPECT_EQ(totals.writes, k_clients * k_rounds);
    EXPECT_EQ(totals.reads, k_clients * k_rounds);
    EXPECT_EQ(totals.ok, k_clients * k_rounds * 2);
    EXPECT_EQ(totals.bytes, k_clients * k_rounds * 2 * k_unit_bytes);
    EXPECT_EQ(totals.mac_mismatch + totals.replay_detected + totals.rejected, 0u);
    EXPECT_EQ(stats.latency_us.count(), k_clients * k_rounds * 2);
}

TEST(ServeServer, BatchedResultsMatchSerialMemoryState)
{
    // The same mixed write stream through (a) the batching server and
    // (b) a serial Secure_memory with the tenant's derived keys must leave
    // bit-identical stored state -- batching is a scheduling choice, not a
    // semantic one.
    Server server(make_key(6), make_key(7), {.tenants = 1, .workers = 3});
    server.start();

    std::vector<std::future<Response>> pending;
    std::vector<core::Secure_memory::Unit_write> serial_batch;
    std::vector<std::vector<u8>> payloads;
    payloads.reserve(32);
    for (u64 i = 0; i < 32; ++i) payloads.push_back(unit_data(1000 + i));
    for (u64 i = 0; i < 32; ++i) {
        const Addr addr = (i % 16) * k_unit_bytes;  // half the writes supersede
        pending.push_back(server.submit(make_request(0, Op::write, addr, payloads[i])));
        serial_batch.push_back({addr, payloads[i], 0, 0, 0});
    }
    for (auto& f : pending) EXPECT_EQ(f.get().status, Verify_status::ok);
    server.drain();

    core::Secure_memory serial(server.tenant(0).enc_key(), server.tenant(0).mac_key());
    serial.write_units(serial_batch);

    for (u64 i = 0; i < 16; ++i) {
        const Addr addr = i * k_unit_bytes;
        const auto served = server.tenant(0).session().memory().snapshot(addr);
        const auto expected = serial.snapshot(addr);
        EXPECT_EQ(served.ciphertext, expected.ciphertext) << "unit " << i;
        EXPECT_EQ(served.mac, expected.mac) << "unit " << i;
    }
}

}  // namespace
}  // namespace seda::serve
