// Closed-loop load generator: deterministic stats for a fixed seed at any
// worker count, zero verification failures under clean multi-tenant load,
// and seed sensitivity.
#include <gtest/gtest.h>

#include "serve/loadgen.h"

namespace seda::serve {
namespace {

Loadgen_config small_config(u64 seed, std::size_t jobs)
{
    Loadgen_config cfg;
    cfg.tenants = 2;
    cfg.clients = 3;
    cfg.requests = 24;
    cfg.jobs = jobs;
    cfg.seed = seed;
    cfg.units_per_client = 8;
    return cfg;
}

/// The deterministic projection of a result: everything CI byte-diffs.
struct Deterministic_view {
    std::vector<Tenant_counters> tenants;
    u64 requests = 0;
    u64 status_failures = 0;
    u64 data_mismatches = 0;

    [[nodiscard]] bool operator==(const Deterministic_view& o) const
    {
        if (requests != o.requests || status_failures != o.status_failures ||
            data_mismatches != o.data_mismatches ||
            tenants.size() != o.tenants.size())
            return false;
        for (std::size_t i = 0; i < tenants.size(); ++i) {
            const Tenant_counters& a = tenants[i];
            const Tenant_counters& b = o.tenants[i];
            if (a.writes != b.writes || a.reads != b.reads || a.ok != b.ok ||
                a.mac_mismatch != b.mac_mismatch ||
                a.replay_detected != b.replay_detected || a.rejected != b.rejected ||
                a.bytes != b.bytes || a.payload_fold != b.payload_fold)
                return false;
        }
        return true;
    }
};

Deterministic_view view_of(const Loadgen_result& r)
{
    return {r.stats.tenants, r.stats.requests, r.status_failures, r.data_mismatches};
}

TEST(Loadgen, CleanLoadHasZeroFailuresAndFullCounts)
{
    const auto cfg = small_config(42, 4);
    const auto result = run_loadgen(cfg);

    EXPECT_EQ(result.total_requests, cfg.tenants * cfg.clients * cfg.requests);
    EXPECT_EQ(result.status_failures, 0u);
    EXPECT_EQ(result.data_mismatches, 0u);
    EXPECT_EQ(result.stats.requests, result.total_requests);

    const auto totals = result.stats.totals();
    EXPECT_EQ(totals.writes + totals.reads, result.total_requests);
    EXPECT_EQ(totals.ok, result.total_requests);
    EXPECT_EQ(totals.mac_mismatch, 0u);
    EXPECT_EQ(totals.replay_detected, 0u);
    EXPECT_EQ(totals.rejected, 0u);
    EXPECT_GT(totals.writes, 0u);
    EXPECT_GT(totals.reads, 0u);
    // Every request was timestamped through the real submit path.
    EXPECT_EQ(result.stats.latency_us.count(), result.total_requests);
}

TEST(Loadgen, StatsAreDeterministicAcrossWorkerCounts)
{
    const auto j1 = run_loadgen(small_config(7, 1));
    const auto j4 = run_loadgen(small_config(7, 4));
    const auto j8 = run_loadgen(small_config(7, 8));
    EXPECT_TRUE(view_of(j1) == view_of(j4));
    EXPECT_TRUE(view_of(j1) == view_of(j8));
    // And across identical repeat runs (scheduling noise must not leak in).
    const auto j4_again = run_loadgen(small_config(7, 4));
    EXPECT_TRUE(view_of(j4) == view_of(j4_again));
}

TEST(Loadgen, DifferentSeedsProduceDifferentTraffic)
{
    const auto a = run_loadgen(small_config(1, 2));
    const auto b = run_loadgen(small_config(2, 2));
    // Payload folds are 64-bit digests of independent streams; collision of
    // every tenant's fold would be astronomically unlikely.
    EXPECT_FALSE(view_of(a) == view_of(b));
}

TEST(Loadgen, ClientSeedsAreInjectiveAcrossTenantAndClient)
{
    EXPECT_NE(client_seed(5, 0, 0), client_seed(5, 0, 1));
    EXPECT_NE(client_seed(5, 0, 0), client_seed(5, 1, 0));
    EXPECT_NE(client_seed(5, 1, 0), client_seed(5, 0, 1));
    EXPECT_NE(client_seed(5, 0, 0), client_seed(6, 0, 0));
    EXPECT_EQ(client_seed(5, 3, 2), client_seed(5, 3, 2));
}

}  // namespace
}  // namespace seda::serve
