// Adversary-under-load campaigns: the live server detects EXACTLY the
// injected plan -- right tenant, right MAC context, right failure class,
// zero false positives -- while background clients, a model hot swap and
// inference engines keep traffic flowing on every tenant.
//
// Suite names are load-bearing for CI: quick scenarios live in
// AttackCampaign (part of the TSan filter), the 50-seed sweep lives in
// CampaignSweep so the instrumented run stays fast.
#include <gtest/gtest.h>

#include "attack/campaign.h"

namespace seda::attack {
namespace {

/// Small-but-mixed config the quick scenarios share.
Campaign_config quick_config(u64 seed)
{
    Campaign_config cfg;
    cfg.seed = seed;
    cfg.tenants = 3;
    cfg.faults = 6;  // deals every kind once (k_fault_kind_count == 6)
    cfg.clients = 2;
    cfg.requests = 8;
    cfg.jobs = 4;
    cfg.hot_swap = false;
    cfg.infer_traffic = false;
    cfg.control_run = false;
    return cfg;
}

TEST(AttackCampaign, DetectsExactlyTheInjectedPlan)
{
    auto cfg = quick_config(0xC0FFEE);
    cfg.control_run = true;  // untouched rows must match a no-campaign run
    const auto r = run_campaign(cfg);

    EXPECT_TRUE(r.attribution_exact);
    EXPECT_EQ(r.false_positives, 0u);
    EXPECT_EQ(r.probe_surprises, 0u);
    EXPECT_EQ(r.background_failures, 0u);
    EXPECT_EQ(r.detected_mac_mismatch, r.expected_mac_mismatch);
    EXPECT_EQ(r.detected_replay_detected, r.expected_replay_detected);
    EXPECT_GT(r.expected_mac_mismatch + r.expected_replay_detected, 0u);
    EXPECT_GE(r.faults_injected, r.plan.faults.size());
    EXPECT_TRUE(r.control_checked);
    EXPECT_TRUE(r.control_identical);
    EXPECT_TRUE(r.clean());

    // Tenant 0 carries control/donor traffic only: no failure may ever
    // land there, and the ledger said so up front.
    EXPECT_TRUE(r.stats.tenants[0].failures.empty());
}

TEST(AttackCampaign, HotSwapUnderTrafficKeepsAttributionExact)
{
    auto cfg = quick_config(0xBEEF);
    cfg.hot_swap = true;
    const auto r = run_campaign(cfg);

    EXPECT_TRUE(r.clean());
    EXPECT_NE(r.swap_tenant, k_no_tenant);
    EXPECT_NE(r.replacement_tenant, k_no_tenant);
    // Every post-evict submit bounced at the door...
    EXPECT_EQ(r.evicted_rejects, r.expected_evicted_rejects);
    EXPECT_GT(r.expected_evicted_rejects, 0u);
    // ...and the re-provisioned tenant detected exactly its one planted
    // tamper, attributed to the swap scenario's MAC context.
    const auto& swapped = r.stats.tenants[r.replacement_tenant].failures;
    ASSERT_EQ(swapped.size(), 1u);
    EXPECT_EQ(swapped[0].status, core::Verify_status::mac_mismatch);
}

TEST(AttackCampaign, InferVictimSeesExactlyThePlantedWeightFault)
{
    auto cfg = quick_config(0xD00D);
    cfg.faults = 3;
    cfg.infer_traffic = true;
    cfg.model = "lenet";
    cfg.inferences = 1;
    const auto r = run_campaign(cfg);

    EXPECT_TRUE(r.clean());
    EXPECT_NE(r.infer_victim_tenant, k_no_tenant);
    EXPECT_GT(r.infer_expected_failures, 0u);
    EXPECT_EQ(r.infer_detected_failures, r.infer_expected_failures);
    // The untouched control engine replayed the same model spotlessly.
    EXPECT_EQ(r.infer_control.totals().mac_mismatch, 0u);
    EXPECT_EQ(r.infer_control.totals().replay_detected, 0u);
}

TEST(AttackCampaign, SecaProbesRecoverNothingUnderBaes)
{
    auto cfg = quick_config(0x5ECA);
    cfg.faults = 4;
    cfg.kinds = {Fault_kind::seca_probe};
    const auto r = run_campaign(cfg);

    EXPECT_EQ(r.seca_probes, 4u);
    EXPECT_EQ(r.seca_recoveries, 0u);
    // Passive probes must produce zero detections anywhere.
    EXPECT_EQ(r.expected_mac_mismatch + r.expected_replay_detected, 0u);
    EXPECT_EQ(r.detected_mac_mismatch + r.detected_replay_detected, 0u);
    EXPECT_TRUE(r.clean());
}

// ------------------------------------------------- 50-seed x jobs sweep ----

TEST(CampaignSweep, FiftySeedsDetectExactlyAtEveryWorkerCount)
{
    for (u64 seed = 1; seed <= 50; ++seed) {
        Campaign_config cfg;
        cfg.seed = seed * 0x9E37'79B9 + 17;
        cfg.tenants = 3;
        cfg.faults = 5;
        cfg.clients = 1;
        cfg.requests = 6;
        cfg.hot_swap = false;
        cfg.infer_traffic = false;
        cfg.control_run = false;

        cfg.jobs = 1;
        const auto r1 = run_campaign(cfg);
        cfg.jobs = 8;
        const auto r8 = run_campaign(cfg);

        ASSERT_TRUE(r1.clean()) << "seed " << cfg.seed << " jobs 1";
        ASSERT_TRUE(r8.clean()) << "seed " << cfg.seed << " jobs 8";
        ASSERT_EQ(r1.detected_mac_mismatch, r1.expected_mac_mismatch)
            << "seed " << cfg.seed;
        ASSERT_EQ(r1.detected_replay_detected, r1.expected_replay_detected)
            << "seed " << cfg.seed;

        // Every deterministic per-tenant row -- counters, folds AND the
        // ordered failure-record lists -- is independent of --jobs.
        ASSERT_EQ(r1.stats.tenants.size(), r8.stats.tenants.size());
        for (std::size_t t = 0; t < r1.stats.tenants.size(); ++t)
            ASSERT_EQ(r1.stats.tenants[t], r8.stats.tenants[t])
                << "seed " << cfg.seed << " tenant " << t;
    }
}

}  // namespace
}  // namespace seda::attack
