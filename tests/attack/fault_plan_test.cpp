// Fault_plan: the campaign recipe is a pure function of its seed, mixes
// kinds, round-robins victims, and its expected-detection bookkeeping
// matches the per-kind contracts.
#include <gtest/gtest.h>

#include "attack/fault_plan.h"
#include "common/error.h"

namespace seda::attack {
namespace {

TEST(AttackPlan, IsAPureFunctionOfItsSeed)
{
    const auto a = make_fault_plan(0x5EDA, 4, 20);
    const auto b = make_fault_plan(0x5EDA, 4, 20);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.victim_tenants, 3u);

    const auto c = make_fault_plan(0x5EDB, 4, 20);
    EXPECT_NE(a.faults, c.faults);
}

TEST(AttackPlan, DealsEveryKindBeforeDrawingUniformly)
{
    // The first k_fault_kind_count faults are one of each kind, in order,
    // so even the shortest mixed plan exercises every adversary move.
    const auto plan = make_fault_plan(7, 3, k_fault_kind_count);
    for (std::size_t k = 0; k < k_fault_kind_count; ++k) {
        EXPECT_EQ(plan.faults[k].kind, static_cast<Fault_kind>(k));
        EXPECT_EQ(plan.count(static_cast<Fault_kind>(k)), 1u);
    }
}

TEST(AttackPlan, VictimsRoundRobinSoEveryTenantIsProbed)
{
    const auto plan = make_fault_plan(9, 4, 9);  // 3 victims, 9 faults
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        EXPECT_EQ(plan.faults[i].tenant, 1 + i % 3);
        EXPECT_EQ(plan.faults[i].index, i);
        EXPECT_GE(plan.faults[i].layer_id, 1u);  // never the 0 sentinel
        EXPECT_NE(plan.faults[i].xor_mask, 0);   // every mask flips a bit
    }
}

TEST(AttackPlan, KindsRestrictionTargetsTheCampaign)
{
    const auto plan = make_fault_plan(11, 3, 6, {Fault_kind::rollback});
    EXPECT_EQ(plan.count(Fault_kind::rollback), 6u);
    for (const Fault& f : plan.faults)
        EXPECT_EQ(f.kind, Fault_kind::rollback);
}

TEST(AttackPlan, ExpectedDetectionsFollowThePerKindContracts)
{
    const auto plan = make_fault_plan(13, 3, 24);
    const auto expected = plan.expected_detections();

    // Totals: shuffle counts twice, seca_probe never, rollback is the only
    // replay class.
    std::size_t want = 0;
    for (std::size_t k = 0; k < k_fault_kind_count; ++k) {
        const auto kind = static_cast<Fault_kind>(k);
        want += plan.count(kind) * Fault_plan::detections_per_fault(kind);
    }
    EXPECT_EQ(expected.size(), want);

    std::size_t replays = 0;
    for (const Detection& d : expected) {
        EXPECT_NE(d.status, core::Verify_status::ok);
        if (d.status == core::Verify_status::replay_detected) ++replays;
    }
    EXPECT_EQ(replays, plan.count(Fault_kind::rollback));

    // Grouped per victim in ascending id (the ledger's tenant-major order).
    for (std::size_t i = 1; i < expected.size(); ++i)
        EXPECT_LE(expected[i - 1].tenant, expected[i].tenant);
}

TEST(AttackPlan, RejectsDegenerateCampaigns)
{
    EXPECT_THROW((void)make_fault_plan(1, 1, 4), Seda_error);  // no victim
    EXPECT_THROW((void)make_fault_plan(1, 3, 0), Seda_error);  // no faults
}

}  // namespace
}  // namespace seda::attack
