// Trace_player: range -> protected-unit expansion must match
// accel::for_each_block exactly -- on ragged lengths, misaligned begins,
// and overlapping halo ranges (duplicates preserved in trace order) -- and
// batches must split exactly at direction flips and the dispatch cap.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "infer/inference_engine.h"
#include "infer/model_binding.h"
#include "infer/trace_player.h"
#include "models/zoo.h"

namespace seda::infer {
namespace {

using accel::Access_range;
using accel::Tensor_kind;

constexpr Bytes k_unit = Model_binding::k_unit_bytes;
constexpr Addr k_act0 = accel::Memory_map::k_act_base[0];

/// The reference expansion the player must reproduce.
std::vector<Addr> reference_blocks(const Access_range& r)
{
    std::vector<Addr> out;
    accel::for_each_block(r, [&](Addr a) { out.push_back(a); });
    return out;
}

Access_range make_range(Addr begin, Bytes length, bool is_write,
                        Tensor_kind tensor = Tensor_kind::ifmap)
{
    Access_range r;
    r.begin = begin;
    r.length = length;
    r.is_write = is_write;
    r.tensor = tensor;
    return r;
}

TEST(InferTracePlayer, ExpansionMatchesForEachBlockOnRaggedRanges)
{
    // Misaligned begins, lengths that straddle block boundaries, and a
    // range ending exactly on one.
    const Access_range cases[] = {
        make_range(k_act0 + 0, 64, false),         // exactly one block
        make_range(k_act0 + 1, 64, false),         // misaligned: two blocks
        make_range(k_act0 + 63, 2, false),         // straddles one boundary
        make_range(k_act0 + 130, 700, true),       // long + misaligned
        make_range(k_act0 + 64, 1, false),         // sub-block tail
        make_range(k_act0 + 4096, 64 * 17, true),  // aligned run
    };
    for (const Access_range& r : cases) {
        std::vector<Addr> got;
        Trace_player::expand_range(r, got);
        EXPECT_EQ(got, reference_blocks(r)) << "begin=" << r.begin << " len=" << r.length;
        EXPECT_EQ(got.size(), r.block_count());
        for (const Addr a : got) EXPECT_EQ(a % k_unit, 0u);
    }
}

TEST(InferTracePlayer, OverlappingHaloRangesKeepDuplicates)
{
    // Two consecutive ifmap slabs sharing 2 rows of 64 B: the overlap
    // blocks must appear twice, in trace order -- that is the halo re-read
    // the protection path re-verifies.
    const auto tile0 = make_range(k_act0, 6 * 64, false);
    const auto tile1 = make_range(k_act0 + 4 * 64, 6 * 64, false);
    std::vector<Addr> got;
    Trace_player::expand_range(tile0, got);
    Trace_player::expand_range(tile1, got);
    ASSERT_EQ(got.size(), 12u);
    EXPECT_EQ(got[4], got[6]);  // first shared block, re-read by tile 1
    EXPECT_EQ(got[5], got[7]);
    std::vector<Addr> expected = reference_blocks(tile0);
    const auto t1 = reference_blocks(tile1);
    expected.insert(expected.end(), t1.begin(), t1.end());
    EXPECT_EQ(got, expected);
}

/// Sink that records batch boundaries and serves reads from a serial
/// store -- the reference semantics the player's mirror must agree with.
class Recording_sink final : public Unit_sink {
public:
    struct Batch {
        bool is_write = false;
        std::vector<Addr> addrs;
    };

    void write_units(std::span<const core::Secure_memory::Unit_write> batch) override
    {
        Batch b{true, {}};
        for (const auto& w : batch) {
            b.addrs.push_back(w.addr);
            store_[w.addr].assign(w.plaintext.begin(), w.plaintext.end());
        }
        batches.push_back(std::move(b));
    }

    void read_units(std::span<const core::Secure_memory::Unit_read> batch,
                    std::span<core::Verify_status> statuses) override
    {
        Batch b{false, {}};
        for (std::size_t i = 0; i < batch.size(); ++i) {
            b.addrs.push_back(batch[i].addr);
            const auto it = store_.find(batch[i].addr);
            require(it != store_.end(), "Recording_sink: read of never-written unit");
            std::copy(it->second.begin(), it->second.end(), batch[i].out.begin());
            statuses[i] = core::Verify_status::ok;
        }
        batches.push_back(std::move(b));
    }

    std::vector<Batch> batches;

private:
    std::unordered_map<Addr, std::vector<u8>> store_;
};

/// A tiny binding to resolve contexts (lenet's layout; traces are synthetic).
const Model_binding& test_binding()
{
    static const Model_binding binding(models::lenet(), accel::Npu_config::server());
    return binding;
}

Trace_player::Payload_fn seeded_payloads()
{
    return [](Addr a, std::span<u8> out) {
        u64 state = 0xF00D ^ a;
        for (auto& b : out) b = static_cast<u8>(splitmix64(state));
    };
}

TEST(InferTracePlayer, BatchesSplitAtDirectionFlipsOnly)
{
    // write x2, read x3 (overlapping), write x1: three batches, with the
    // duplicate read preserved inside the middle one.
    accel::Layer_sim layer;
    layer.trace = {
        make_range(k_act0, 4 * 64, true, Tensor_kind::ofmap),
        make_range(k_act0 + 8 * 64, 2 * 64, true, Tensor_kind::ofmap),
        make_range(k_act0, 2 * 64, false),
        make_range(k_act0 + 64, 3 * 64, false),  // overlaps the previous read
        make_range(k_act0 + 8 * 64, 64, false),
        make_range(k_act0 + 16 * 64, 64, true, Tensor_kind::ofmap),
    };

    Trace_player player(test_binding());
    Recording_sink sink;
    Trace_player::Mirror mirror;
    Layer_infer_stats stats;
    player.play_layer(layer, sink, mirror, seeded_payloads(), stats);

    ASSERT_EQ(sink.batches.size(), 3u);
    EXPECT_TRUE(sink.batches[0].is_write);
    EXPECT_EQ(sink.batches[0].addrs.size(), 6u);
    EXPECT_FALSE(sink.batches[1].is_write);
    EXPECT_EQ(sink.batches[1].addrs.size(), 6u);  // 2 + 3 + 1, duplicate kept
    EXPECT_EQ(sink.batches[1].addrs[1], sink.batches[1].addrs[2]);  // halo re-read
    EXPECT_TRUE(sink.batches[2].is_write);

    // Reference: concatenated for_each_block per direction run.
    std::vector<Addr> reads;
    for (int i = 2; i <= 4; ++i) {
        const auto blocks = reference_blocks(layer.trace[static_cast<std::size_t>(i)]);
        reads.insert(reads.end(), blocks.begin(), blocks.end());
    }
    EXPECT_EQ(sink.batches[1].addrs, reads);

    // Replay through a serial store must agree with the player's mirror.
    EXPECT_EQ(stats.total().data_mismatches, 0u);
    EXPECT_EQ(stats.ofmap.writes, 7u);
    EXPECT_EQ(stats.ifmap.reads, 6u);
    EXPECT_EQ(stats.total().failures(), 0u);
}

TEST(InferTracePlayer, DispatchCapSplitsLongRangesWithoutReordering)
{
    accel::Layer_sim layer;
    layer.trace = {make_range(k_act0, 10 * 64, true, Tensor_kind::ofmap),
                   make_range(k_act0, 10 * 64, false)};

    Trace_player player(test_binding(), /*max_batch_units=*/4);
    Recording_sink sink;
    Trace_player::Mirror mirror;
    Layer_infer_stats stats;
    player.play_layer(layer, sink, mirror, seeded_payloads(), stats);

    // 10 writes in caps of 4 -> 4+4+2, then reads likewise.
    ASSERT_EQ(sink.batches.size(), 6u);
    std::vector<Addr> write_addrs, read_addrs;
    for (const auto& b : sink.batches) {
        auto& dst = b.is_write ? write_addrs : read_addrs;
        EXPECT_LE(b.addrs.size(), 4u);
        dst.insert(dst.end(), b.addrs.begin(), b.addrs.end());
    }
    EXPECT_EQ(write_addrs, reference_blocks(layer.trace[0]));
    EXPECT_EQ(read_addrs, reference_blocks(layer.trace[1]));
    EXPECT_EQ(stats.total().data_mismatches, 0u);
}

TEST(InferTracePlayer, InBatchDuplicateWritesFollowSupersedeOrder)
{
    // The same unit written twice in one batch: serial semantics keep the
    // LAST payload, which both the recording sink (in-order store) and the
    // player's mirror must reproduce -- then the read agrees byte-for-byte.
    accel::Layer_sim layer;
    layer.trace = {make_range(k_act0, 2 * 64, true, Tensor_kind::ofmap),
                   make_range(k_act0, 64, true, Tensor_kind::ofmap),
                   make_range(k_act0, 2 * 64, false)};

    Trace_player player(test_binding());
    Recording_sink sink;
    Trace_player::Mirror mirror;
    Layer_infer_stats stats;
    u64 counter = 0;
    // Payloads differ per CALL, so the superseding write really differs.
    const Trace_player::Payload_fn fresh = [&counter](Addr a, std::span<u8> out) {
        u64 state = a ^ (++counter << 32);
        for (auto& b : out) b = static_cast<u8>(splitmix64(state));
    };
    player.play_layer(layer, sink, mirror, fresh, stats);

    ASSERT_EQ(sink.batches.size(), 2u);
    EXPECT_EQ(sink.batches[0].addrs.size(), 3u);  // one write batch, dup inside
    EXPECT_EQ(stats.total().data_mismatches, 0u);
    EXPECT_EQ(stats.ifmap.reads, 2u);
    EXPECT_EQ(stats.total().failures(), 0u);
}

TEST(InferTracePlayer, StageUnitsWritesEveryAddressInOrder)
{
    Trace_player player(test_binding(), /*max_batch_units=*/8);
    Recording_sink sink;
    Trace_player::Mirror mirror;
    Unit_counters counters;
    std::vector<Addr> addrs;
    for (Addr a = 0; a < 20; ++a) addrs.push_back(k_act0 + a * k_unit);
    player.stage_units(addrs, sink, mirror, seeded_payloads(), counters);

    ASSERT_EQ(sink.batches.size(), 3u);  // 8 + 8 + 4
    std::vector<Addr> seen;
    for (const auto& b : sink.batches) {
        EXPECT_TRUE(b.is_write);
        seen.insert(seen.end(), b.addrs.begin(), b.addrs.end());
    }
    EXPECT_EQ(seen, addrs);
    EXPECT_EQ(counters.writes, 20u);
    EXPECT_EQ(counters.bytes, 20u * k_unit);
    EXPECT_EQ(mirror.size(), 20u);
}

}  // namespace
}  // namespace seda::infer
