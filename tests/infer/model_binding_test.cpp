// Model_binding: the address->context convention and the touched-unit
// working sets that make "weights written once at model load" workable
// even for gather-dominated models.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "infer/model_binding.h"
#include "models/zoo.h"

namespace seda::infer {
namespace {

constexpr Bytes k_unit = Model_binding::k_unit_bytes;

const Model_binding& lenet_binding()
{
    static const Model_binding binding(models::lenet(), accel::Npu_config::server());
    return binding;
}

void expect_sorted_unique_aligned(std::span<const Addr> set)
{
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end());
    for (const Addr a : set) EXPECT_EQ(a % k_unit, 0u);
}

TEST(InferModelBinding, WorkingSetsAreSortedUniqueAndAligned)
{
    const auto& b = lenet_binding();
    expect_sorted_unique_aligned(b.weight_load_units());
    expect_sorted_unique_aligned(b.act_prefill_units());
    expect_sorted_unique_aligned(b.input_units());
    EXPECT_FALSE(b.weight_load_units().empty());
    EXPECT_FALSE(b.input_units().empty());
}

TEST(InferModelBinding, InputUnitsAreActPrefillSubset)
{
    const auto& b = lenet_binding();
    const auto prefill = b.act_prefill_units();
    EXPECT_TRUE(std::includes(prefill.begin(), prefill.end(), b.input_units().begin(),
                              b.input_units().end()));
}

TEST(InferModelBinding, WeightContextNamesTheOwningLayer)
{
    const auto& b = lenet_binding();
    const auto& starts = b.sim().map.weight_addr;
    for (const Addr a : b.weight_load_units()) {
        EXPECT_EQ(b.classify(a), Model_binding::Region::weight);
        const auto ctx = b.context(a);
        EXPECT_EQ(ctx.fmap_idx, 0u);
        ASSERT_LT(ctx.layer_id, starts.size());
        EXPECT_EQ(starts[ctx.layer_id] + static_cast<Addr>(ctx.blk_idx) * k_unit, a);
    }
    // The first unit of a layer's weight region is block 0 of that layer.
    const auto ctx0 = b.context(starts[0]);
    EXPECT_EQ(ctx0.layer_id, 0u);
    EXPECT_EQ(ctx0.blk_idx, 0u);
}

TEST(InferModelBinding, ActivationContextIsRegionTagged)
{
    const auto& b = lenet_binding();
    for (const Addr a : b.act_prefill_units()) {
        const auto region = b.classify(a);
        ASSERT_TRUE(region == Model_binding::Region::act0 ||
                    region == Model_binding::Region::act1);
        const auto ctx = b.context(a);
        EXPECT_EQ(ctx.fmap_idx, 1u);
        const u32 r = region == Model_binding::Region::act0 ? 0u : 1u;
        EXPECT_EQ(ctx.layer_id, 0x8000'0000u | r);
        EXPECT_EQ(accel::Memory_map::k_act_base[r] + static_cast<Addr>(ctx.blk_idx) * k_unit,
                  a);
    }
}

TEST(InferModelBinding, ContextIsAPureFunctionOfTheAddress)
{
    // The producer/consumer agreement: the same address yields the same
    // context fields on every call -- this is the whole convention.
    const auto& b = lenet_binding();
    for (const Addr a : {b.weight_load_units().front(), b.act_prefill_units().front(),
                         b.act_prefill_units().back()}) {
        const auto c1 = b.context(a);
        const auto c2 = b.context(a);
        EXPECT_EQ(c1.layer_id, c2.layer_id);
        EXPECT_EQ(c1.fmap_idx, c2.fmap_idx);
        EXPECT_EQ(c1.blk_idx, c2.blk_idx);
    }
}

TEST(InferModelBinding, OutOfRegionAndMisalignedAddressesThrow)
{
    const auto& b = lenet_binding();
    EXPECT_THROW((void)b.classify(0x7000'0000ULL), Seda_error);  // between regions
    EXPECT_THROW((void)b.classify(accel::Memory_map::k_act_base[0] + 1), Seda_error);
}

TEST(InferModelBinding, GatherModelLoadsOnlyTouchedWeightUnits)
{
    // DLRM's embedding tables dwarf what one batch's gathers touch: the
    // load set must be the touched subset, not the whole region.
    const Model_binding b(models::dlrm(), accel::Npu_config::server());
    Bytes table_bytes = 0;
    for (const auto& l : b.sim().model->layers) table_bytes += l.weight_bytes();
    const Bytes load_bytes = b.weight_load_units().size() * k_unit;
    EXPECT_LT(load_bytes, table_bytes / 10);
    EXPECT_FALSE(b.weight_load_units().empty());
}

TEST(InferModelBinding, EveryTraceReadIsCoveredByTheWorkingSets)
{
    // The no-never-written-read guarantee: every block any trace reads is
    // in weight_load or act_prefill.
    for (const char* name : {"lenet", "resnet18", "transformer_fwd"}) {
        const Model_binding b(models::model_by_name(name),
                              accel::Npu_config::server());
        const auto weights = b.weight_load_units();
        const auto acts = b.act_prefill_units();
        for (const auto& layer : b.sim().layers) {
            for (const auto& r : layer.trace) {
                if (r.is_write) continue;
                accel::for_each_block(r, [&](Addr a) {
                    const auto& set =
                        b.classify(a) == Model_binding::Region::weight ? weights : acts;
                    EXPECT_TRUE(std::binary_search(set.begin(), set.end(), a))
                        << name << " layer " << layer.layer_id << " addr " << a;
                });
            }
        }
    }
}

}  // namespace
}  // namespace seda::infer
