// Inference_engine + run_infer: the protected end-to-end path.  Clean
// replays verify everything; halo re-reads hit the same units twice and
// still verify; tampered / rolled-back units surface in exactly the right
// layer and tensor-kind counters; counters are identical at any worker
// count and across the session / serve replay paths.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "infer/inference_engine.h"
#include "infer/model_binding.h"
#include "infer/run_infer.h"
#include "infer/unit_sink.h"
#include "models/zoo.h"
#include "runtime/secure_session.h"

namespace seda::infer {
namespace {

std::vector<u8> make_key(u64 seed)
{
    Rng rng(seed);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

const Model_binding& lenet_binding()
{
    static const Model_binding binding(models::lenet(), accel::Npu_config::server());
    return binding;
}

/// Expected per-layer op counts derived straight from the trace geometry.
struct Trace_counts {
    u64 reads = 0;
    u64 writes = 0;
};

Trace_counts trace_counts(const accel::Layer_sim& layer)
{
    Trace_counts c;
    for (const auto& r : layer.trace) (r.is_write ? c.writes : c.reads) += r.block_count();
    return c;
}

TEST(InferEngine, CleanLenetReplayVerifiesEverythingEndToEnd)
{
    const auto& binding = lenet_binding();
    runtime::Secure_session session(make_key(1), make_key(2),
                                    {Model_binding::k_unit_bytes, true}, 1);
    Session_sink sink(session);
    Inference_engine engine(binding);
    engine.load(sink);
    engine.infer(sink);
    engine.infer(sink);

    const Infer_stats& stats = engine.stats();
    EXPECT_EQ(stats.inferences, 2u);
    EXPECT_EQ(stats.load.writes,
              binding.weight_load_units().size() + binding.act_prefill_units().size());
    EXPECT_EQ(stats.load.failures(), 0u);

    const Unit_counters totals = stats.totals();
    EXPECT_EQ(totals.failures(), 0u);
    EXPECT_EQ(totals.data_mismatches, 0u);
    EXPECT_EQ(totals.ok, totals.reads + totals.writes);

    // Replay counts must match the trace geometry exactly (2 passes, plus
    // the per-inference input staging on layer 0's ifmap row).
    const auto& layers = binding.sim().layers;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const Trace_counts expect = trace_counts(layers[i]);
        const Unit_counters got = stats.layers[i].total();
        EXPECT_EQ(got.reads, 2 * expect.reads) << "layer " << i;
        const u64 staged = i == 0 ? 2 * binding.input_units().size() : 0;
        EXPECT_EQ(got.writes, 2 * expect.writes + staged) << "layer " << i;
    }
}

TEST(InferEngine, HaloReReadsHitTheSameUnitsTwiceAndVerify)
{
    // A conv sized to force multiple row tiles on the edge NPU: consecutive
    // tiles share (filt_h - stride) ifmap rows, so the trace re-reads those
    // units -- total ifmap reads must exceed the unique ifmap working set.
    accel::Model_desc model;
    model.name = "halo-conv";
    model.layers.push_back(
        accel::Layer_desc::make_conv("conv", 128, 128, 16, 3, 3, 16, 1));
    const Model_binding binding(model, accel::Npu_config::edge());

    const auto& plan = binding.sim().layers[0].plan;
    ASSERT_GT(plan.m_tiles, 1) << "layer does not tile; the test needs halos";
    ASSERT_GT(plan.halo_rows, 0);

    runtime::Secure_session session(make_key(3), make_key(4),
                                    {Model_binding::k_unit_bytes, true}, 1);
    Session_sink sink(session);
    Inference_engine engine(binding);
    engine.load(sink);
    engine.infer(sink);

    const Unit_counters& ifmap = engine.stats().layers[0].ifmap;
    // input staging writes + trace reads; the duplicate re-reads are the
    // difference between total reads and the unique input set.
    EXPECT_GT(ifmap.reads, binding.input_units().size());
    EXPECT_EQ(engine.stats().totals().failures(), 0u);
    EXPECT_EQ(engine.stats().totals().data_mismatches, 0u);
}

TEST(InferEngine, TamperedWeightUnitSurfacesInItsLayerAndKind)
{
    const auto& binding = lenet_binding();
    runtime::Secure_session session(make_key(5), make_key(6),
                                    {Model_binding::k_unit_bytes, true}, 1);
    Session_sink sink(session);
    Inference_engine engine(binding);
    engine.load(sink);

    const Addr victim = binding.weight_load_units().front();
    const u32 layer = binding.context(victim).layer_id;
    session.memory().tamper(victim, 3, 0x40);

    engine.infer(sink);
    const Infer_stats& stats = engine.stats();
    EXPECT_GE(stats.layers[layer].weight.mac_mismatch, 1u);
    // Verification accounting, not a crash: every other unit still verifies
    // and the pass completes.
    EXPECT_EQ(stats.totals().failures(), stats.layers[layer].weight.mac_mismatch);
    for (std::size_t i = 0; i < stats.layers.size(); ++i) {
        EXPECT_EQ(stats.layers[i].ifmap.failures(), 0u) << i;
        EXPECT_EQ(stats.layers[i].ofmap.failures(), 0u) << i;
    }
}

TEST(InferEngine, RolledBackInputUnitIsCaughtAsReplay)
{
    const auto& binding = lenet_binding();
    runtime::Secure_session session(make_key(7), make_key(8),
                                    {Model_binding::k_unit_bytes, true}, 1);
    Session_sink sink(session);
    Inference_engine engine(binding);
    engine.load(sink);
    engine.infer(sink);

    // Snapshot an input unit after inference 1, let inference 2's staging
    // overwrite it (VN bump), then roll the stored unit back and replay
    // the read: the stale-but-self-consistent copy must trip the on-chip
    // VN check and land in the replay counter of the right tensor kind.
    const Addr victim = binding.input_units().front();
    const auto old = session.memory().snapshot(victim);
    engine.infer(sink);
    session.memory().rollback(victim, old);

    accel::Layer_sim probe;
    accel::Access_range read;
    read.begin = victim;
    read.length = Model_binding::k_unit_bytes;
    read.is_write = false;
    read.tensor = accel::Tensor_kind::ifmap;
    probe.trace = {read};

    Trace_player player(binding);
    Trace_player::Mirror mirror;
    Layer_infer_stats stats;
    player.play_layer(probe, sink, mirror,
                      [](Addr, std::span<u8>) {}, stats);
    EXPECT_EQ(stats.ifmap.replay_detected, 1u);
    EXPECT_EQ(stats.ifmap.ok, 0u);
}

TEST(InferEngine, LifecycleMisuseThrows)
{
    const auto& binding = lenet_binding();
    runtime::Secure_session session(make_key(9), make_key(10),
                                    {Model_binding::k_unit_bytes, true}, 1);
    Session_sink sink(session);
    Inference_engine engine(binding);
    EXPECT_THROW(engine.infer(sink), Seda_error);  // infer before load
    engine.load(sink);
    EXPECT_THROW(engine.load(sink), Seda_error);  // load twice
}

TEST(InferRun, CountersAreIdenticalAtAnyWorkerCount)
{
    const auto model = models::lenet();
    const auto npu = accel::Npu_config::server();
    Infer_config cfg;
    cfg.tenants = 2;
    cfg.inferences = 2;
    cfg.path = Replay_path::session;
    cfg.jobs = 1;
    const auto r1 = run_infer(model, npu, cfg);
    cfg.jobs = 4;
    const auto r4 = run_infer(model, npu, cfg);

    EXPECT_EQ(r1.verification_failures, 0u);
    EXPECT_EQ(r1.data_mismatches, 0u);
    ASSERT_EQ(r1.per_tenant.size(), r4.per_tenant.size());
    for (std::size_t t = 0; t < r1.per_tenant.size(); ++t)
        EXPECT_EQ(r1.per_tenant[t], r4.per_tenant[t]) << "tenant " << t;
    EXPECT_EQ(r1.merged, r4.merged);
}

TEST(InferRun, ServePathMatchesSessionPathExactly)
{
    // The full-stack route (admission queue -> conflict-aware batching ->
    // per-tenant bulk crypto) must produce byte-for-byte the counters the
    // direct session route does.
    const auto model = models::lenet();
    const auto npu = accel::Npu_config::server();
    Infer_config cfg;
    cfg.tenants = 2;
    cfg.inferences = 2;
    cfg.jobs = 2;
    cfg.path = Replay_path::session;
    const auto direct = run_infer(model, npu, cfg);
    cfg.path = Replay_path::serve;
    const auto served = run_infer(model, npu, cfg);

    EXPECT_EQ(served.verification_failures, 0u);
    EXPECT_EQ(served.data_mismatches, 0u);
    EXPECT_EQ(direct.merged, served.merged);
    for (std::size_t t = 0; t < direct.per_tenant.size(); ++t)
        EXPECT_EQ(direct.per_tenant[t], served.per_tenant[t]) << "tenant " << t;
}

TEST(InferRun, TenantsHaveIndependentDeterministicStreams)
{
    EXPECT_NE(tenant_seed(1, 0), tenant_seed(1, 1));
    EXPECT_NE(tenant_seed(1, 0), tenant_seed(2, 0));

    const auto model = models::lenet();
    const auto npu = accel::Npu_config::server();
    Infer_config cfg;
    cfg.tenants = 2;
    cfg.inferences = 1;
    cfg.path = Replay_path::session;
    const auto r = run_infer(model, npu, cfg);
    // Same op counts per tenant, different payload folds (different seeds).
    EXPECT_EQ(r.per_tenant[0].totals().reads, r.per_tenant[1].totals().reads);
    EXPECT_NE(r.per_tenant[0].totals().payload_fold,
              r.per_tenant[1].totals().payload_fold);
}

}  // namespace
}  // namespace seda::infer
