// The SCALE-Sim-style analytic cycle model, hand-checked on small layers.
#include <gtest/gtest.h>

#include "accel/systolic.h"

namespace seda::accel {
namespace {

Npu_config tiny_npu(int rows, int cols, Dataflow df)
{
    Npu_config c = Npu_config::edge();
    c.array_rows = rows;
    c.array_cols = cols;
    c.dataflow = df;
    return c;
}

TEST(Systolic, SingleFoldWeightStationary)
{
    // GEMM 10x8x4 on an 8x4 array: one fold; cycles = M + 2R + C - 2.
    const auto l = Layer_desc::make_matmul("mm", 10, 8, 4);
    const auto r = systolic_compute(l, tiny_npu(8, 4, Dataflow::weight_stationary));
    EXPECT_EQ(r.folds, 1u);
    EXPECT_EQ(r.cycles, 10u + 16 + 4 - 2);
}

TEST(Systolic, FoldCountWeightStationary)
{
    // K=20 on 8 rows -> 3 folds; N=10 on 4 cols -> 3 folds; 9 total.
    const auto l = Layer_desc::make_matmul("mm", 6, 20, 10);
    const auto r = systolic_compute(l, tiny_npu(8, 4, Dataflow::weight_stationary));
    EXPECT_EQ(r.folds, 9u);
    EXPECT_EQ(r.cycles, 9u * (6 + 16 + 4 - 2));
}

TEST(Systolic, SingleFoldOutputStationary)
{
    // OS: folds over M and N; per-fold K + 2R + C - 2.
    const auto l = Layer_desc::make_matmul("mm", 8, 12, 4);
    const auto r = systolic_compute(l, tiny_npu(8, 4, Dataflow::output_stationary));
    EXPECT_EQ(r.folds, 1u);
    EXPECT_EQ(r.cycles, 12u + 16 + 4 - 2);
}

TEST(Systolic, ConvLowersToGemm)
{
    // 4x4x2 ifmap, 3x3 filter, 2 out channels -> M=4, K=18, N=2.
    const auto l = Layer_desc::make_conv("c", 4, 4, 2, 3, 3, 2, 1);
    const auto r = systolic_compute(l, tiny_npu(32, 32, Dataflow::weight_stationary));
    EXPECT_EQ(r.folds, 1u);
    EXPECT_EQ(r.cycles, 4u + 64 + 32 - 2);
}

TEST(Systolic, UtilizationIsBounded)
{
    for (const auto df : {Dataflow::weight_stationary, Dataflow::output_stationary}) {
        const auto l = Layer_desc::make_conv("c", 58, 58, 64, 3, 3, 128, 1);
        const auto r = systolic_compute(l, tiny_npu(32, 32, df));
        EXPECT_GT(r.utilization, 0.0);
        EXPECT_LE(r.utilization, 1.0);
    }
}

TEST(Systolic, BigArrayWastesSmallLayers)
{
    // A 19x19 board layer on a 256x256 array must have poor utilization --
    // the TPU-v1 effect the paper's server numbers reflect.
    const auto l = Layer_desc::make_conv("agz", 21, 21, 17, 3, 3, 256, 1);
    const auto big = systolic_compute(l, tiny_npu(256, 256, Dataflow::weight_stationary));
    const auto small = systolic_compute(l, tiny_npu(32, 32, Dataflow::weight_stationary));
    EXPECT_LT(big.utilization, small.utilization);
}

TEST(Systolic, PoolBypassesArray)
{
    const auto l = Layer_desc::make_pool("p", 28, 28, 64, 2, 2);
    const auto r = systolic_compute(l, tiny_npu(32, 32, Dataflow::weight_stationary));
    EXPECT_EQ(r.folds, 0u);
    // One output element per column lane per cycle.
    EXPECT_EQ(r.cycles, ceil_div<u64>(14 * 14 * 64, 32));
}

TEST(Systolic, EmbeddingBypassesArray)
{
    const auto l = Layer_desc::make_embedding("e", 1000, 64, 32);
    const auto r = systolic_compute(l, tiny_npu(32, 32, Dataflow::weight_stationary));
    EXPECT_EQ(r.folds, 0u);
    EXPECT_EQ(r.cycles, ceil_div<u64>(32 * 64, 32));
}

TEST(Systolic, MoreComputePerFoldForLargerM)
{
    const auto small = Layer_desc::make_matmul("s", 16, 64, 64);
    const auto large = Layer_desc::make_matmul("l", 1024, 64, 64);
    const auto npu = tiny_npu(32, 32, Dataflow::weight_stationary);
    EXPECT_GT(systolic_compute(large, npu).cycles, systolic_compute(small, npu).cycles);
    EXPECT_GT(systolic_compute(large, npu).utilization,
              systolic_compute(small, npu).utilization);
}

}  // namespace
}  // namespace seda::accel
