// Layer descriptor geometry: shapes, GEMM lowering, byte accounting.
#include <gtest/gtest.h>

#include "accel/layer.h"
#include "common/error.h"

namespace seda::accel {
namespace {

TEST(Layer, ConvShapes)
{
    const auto l = Layer_desc::make_conv("c", 34, 34, 16, 3, 3, 32, 1);
    EXPECT_EQ(l.ofmap_h(), 32);
    EXPECT_EQ(l.ofmap_w(), 32);
    EXPECT_EQ(l.out_channels(), 32);
    EXPECT_EQ(l.gemm_m_dim(), 32u * 32u);
    EXPECT_EQ(l.gemm_k_dim(), 3u * 3u * 16u);
    EXPECT_EQ(l.gemm_n_dim(), 32u);
    EXPECT_EQ(l.macs(), 1024ull * 144 * 32);
    EXPECT_EQ(l.ifmap_bytes(), 34u * 34 * 16);
    EXPECT_EQ(l.weight_bytes(), 9u * 16 * 32);
    EXPECT_EQ(l.ofmap_bytes(), 32u * 32 * 32);
    EXPECT_EQ(l.ifmap_row_bytes(), 34u * 16);
    EXPECT_EQ(l.ofmap_row_bytes(), 32u * 32);
}

TEST(Layer, StridedConvShapes)
{
    const auto l = Layer_desc::make_conv("c", 227, 227, 3, 11, 11, 96, 4);
    EXPECT_EQ(l.ofmap_h(), 55);
    EXPECT_EQ(l.ofmap_w(), 55);
}

TEST(Layer, DepthwiseShapes)
{
    const auto l = Layer_desc::make_dwconv("d", 30, 30, 64, 3, 3, 1);
    EXPECT_EQ(l.ofmap_h(), 28);
    EXPECT_EQ(l.out_channels(), 64);
    EXPECT_EQ(l.gemm_k_dim(), 9u);   // per-channel window
    EXPECT_EQ(l.gemm_n_dim(), 64u);  // channels across columns
    EXPECT_EQ(l.weight_bytes(), 9u * 64);
    EXPECT_EQ(l.macs(), 28ull * 28 * 9 * 64);
}

TEST(Layer, FcIsRowVectorGemm)
{
    const auto l = Layer_desc::make_fc("fc", 4096, 1000);
    EXPECT_EQ(l.kind, Layer_kind::matmul);
    EXPECT_EQ(l.gemm_m_dim(), 1u);
    EXPECT_EQ(l.gemm_k_dim(), 4096u);
    EXPECT_EQ(l.gemm_n_dim(), 1000u);
    EXPECT_EQ(l.weight_bytes(), 4096u * 1000);
    EXPECT_EQ(l.ifmap_bytes(), 4096u);
    EXPECT_EQ(l.ofmap_bytes(), 1000u);
}

TEST(Layer, MatmulShapes)
{
    const auto l = Layer_desc::make_matmul("mm", 256, 512, 2048);
    EXPECT_EQ(l.ofmap_rows(), 256);
    EXPECT_EQ(l.ifmap_row_bytes(), 512u);
    EXPECT_EQ(l.ofmap_row_bytes(), 2048u);
    EXPECT_EQ(l.macs(), 256ull * 512 * 2048);
}

TEST(Layer, PoolHasNoWeightsOrMacs)
{
    const auto l = Layer_desc::make_pool("p", 28, 28, 64, 2, 2);
    EXPECT_EQ(l.ofmap_h(), 14);
    EXPECT_EQ(l.weight_bytes(), 0u);
    EXPECT_EQ(l.macs(), 0u);
    EXPECT_FALSE(l.is_compute());
    EXPECT_EQ(l.ofmap_bytes(), 14u * 14 * 64);
}

TEST(Layer, EmbeddingGeometry)
{
    const auto l = Layer_desc::make_embedding("e", 100000, 64, 128);
    EXPECT_EQ(l.weight_bytes(), 100000u * 64);
    EXPECT_EQ(l.ofmap_bytes(), 128u * 64);
    EXPECT_EQ(l.ifmap_bytes(), 128u * 4);  // 4-byte indices
    EXPECT_EQ(l.macs(), 0u);
    EXPECT_FALSE(l.is_compute());
}

struct Bad_layer_case {
    const char* name;
    Layer_desc desc;
};

Layer_desc raw_conv(int ih, int iw, int cin, int fh, int fw, int cout, int stride)
{
    Layer_desc l;
    l.name = "bad";
    l.kind = Layer_kind::conv;
    l.ifmap_h = ih;
    l.ifmap_w = iw;
    l.c_in = cin;
    l.filt_h = fh;
    l.filt_w = fw;
    l.c_out = cout;
    l.stride = stride;
    return l;
}

class LayerValidationTest : public ::testing::TestWithParam<Bad_layer_case> {};

TEST_P(LayerValidationTest, RejectsInvalidDescriptor)
{
    EXPECT_THROW(GetParam().desc.validate(), Seda_error);
}

INSTANTIATE_TEST_SUITE_P(
    BadLayers, LayerValidationTest,
    ::testing::Values(Bad_layer_case{"zero ifmap", raw_conv(0, 10, 3, 3, 3, 8, 1)},
                      Bad_layer_case{"zero channels", raw_conv(10, 10, 0, 3, 3, 8, 1)},
                      Bad_layer_case{"filter too big", raw_conv(4, 4, 3, 5, 5, 8, 1)},
                      Bad_layer_case{"zero stride", raw_conv(10, 10, 3, 3, 3, 8, 0)},
                      Bad_layer_case{"stride misfit", raw_conv(10, 10, 3, 3, 3, 8, 2)},
                      Bad_layer_case{"zero cout", raw_conv(10, 10, 3, 3, 3, 0, 1)}),
    [](const auto& pinfo) {
        std::string n = pinfo.param.name;
        for (auto& c : n)
            if (c == ' ') c = '_';
        return n;
    });

TEST(Layer, DepthwiseRequiresMatchingChannels)
{
    Layer_desc l = raw_conv(10, 10, 8, 3, 3, 16, 1);
    l.kind = Layer_kind::dwconv;
    EXPECT_THROW(l.validate(), Seda_error);
}

TEST(Layer, MatmulValidation)
{
    EXPECT_THROW(Layer_desc::make_matmul("m", 0, 4, 4), Seda_error);
    EXPECT_THROW(Layer_desc::make_matmul("m", 4, 0, 4), Seda_error);
    EXPECT_THROW(Layer_desc::make_matmul("m", 4, 4, 0), Seda_error);
}

TEST(Model, Totals)
{
    Model_desc m;
    m.name = "two-layer";
    m.layers = {Layer_desc::make_conv("c", 6, 6, 1, 3, 3, 4, 1),
                Layer_desc::make_fc("f", 64, 10)};
    EXPECT_EQ(m.total_weight_bytes(), 9u * 4 + 64u * 10);
    EXPECT_EQ(m.total_macs(), 16ull * 9 * 4 + 64ull * 10);
}

}  // namespace
}  // namespace seda::accel
