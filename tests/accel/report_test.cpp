// SCALE-Sim-style report generation.
#include <gtest/gtest.h>

#include <sstream>

#include "accel/report.h"
#include "models/zoo.h"

namespace seda::accel {
namespace {

std::size_t count_lines(const std::string& s)
{
    std::size_t n = 0;
    for (char c : s)
        if (c == '\n') ++n;
    return n;
}

TEST(Report, ComputeReportHasOneRowPerLayer)
{
    const auto sim = simulate_model(models::lenet(), Npu_config::edge());
    std::ostringstream os;
    write_compute_report(sim, os);
    // Header + one CSV row per layer.
    EXPECT_EQ(count_lines(os.str()), sim.layers.size() + 1);
    EXPECT_NE(os.str().find("conv1"), std::string::npos);
    EXPECT_NE(os.str().find("utilization"), std::string::npos);
}

TEST(Report, MemoryReportHasOneRowPerLayer)
{
    const auto sim = simulate_model(models::lenet(), Npu_config::edge());
    std::ostringstream os;
    write_memory_report(sim, os);
    EXPECT_EQ(count_lines(os.str()), sim.layers.size() + 1);
    EXPECT_NE(os.str().find("halo_refetch_bytes"), std::string::npos);
}

TEST(Report, CsvFieldCountsAreUniform)
{
    const auto sim = simulate_model(models::resnet18(), Npu_config::server());
    std::ostringstream os;
    write_compute_report(sim, os);
    std::istringstream is(os.str());
    std::string line;
    std::size_t expected_commas = std::string::npos;
    while (std::getline(is, line)) {
        const auto commas =
            static_cast<std::size_t>(std::count(line.begin(), line.end(), ','));
        if (expected_commas == std::string::npos) expected_commas = commas;
        EXPECT_EQ(commas, expected_commas) << line;
    }
}

TEST(Report, CombinedStringCarriesBothSections)
{
    const auto sim = simulate_model(models::ncf(), Npu_config::server());
    const auto s = reports_to_string(sim);
    EXPECT_NE(s.find("# compute report"), std::string::npos);
    EXPECT_NE(s.find("# memory report"), std::string::npos);
    EXPECT_NE(s.find("embedding"), std::string::npos);
}

TEST(Report, WeightRefetchFactorAtLeastOneForComputeLayers)
{
    const auto sim = simulate_model(models::googlenet(), Npu_config::edge());
    std::ostringstream os;
    write_memory_report(sim, os);
    // Spot check: the report runs without assert and the refetch column for
    // a known non-resident layer exceeds 1.
    const auto s = os.str();
    EXPECT_NE(s.find("3a_3x3"), std::string::npos);
}

}  // namespace
}  // namespace seda::accel
