// Trace generation: coverage, halo re-reads, byte accounting, block math.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "accel/accel_sim.h"

namespace seda::accel {
namespace {

TEST(AccessRange, BlockMath)
{
    Access_range r;
    r.begin = 100;
    r.length = 200;
    EXPECT_EQ(r.first_block(), 64u);
    EXPECT_EQ(r.end_block(), 320u);
    EXPECT_EQ(r.block_count(), 4u);

    std::vector<Addr> blocks;
    for_each_block(r, [&](Addr a) { blocks.push_back(a); });
    EXPECT_EQ(blocks, (std::vector<Addr>{64, 128, 192, 256}));
}

TEST(AccessRange, AlignedRangeHasExactBlocks)
{
    Access_range r;
    r.begin = 0;
    r.length = 256;
    EXPECT_EQ(r.block_count(), 4u);
}

Model_sim simulate_one(const Layer_desc& layer, const Npu_config& npu)
{
    Model_desc m;
    m.name = "single";
    m.layers = {layer};
    return simulate_model(std::move(m), npu);
}

TEST(Trace, CoversWholeIfmapAndOfmap)
{
    const auto sim = simulate_one(Layer_desc::make_conv("c", 58, 58, 32, 3, 3, 64, 1),
                                  Npu_config::edge());
    const auto& l = sim.layers[0];

    std::set<Addr> ifmap_blocks;
    std::set<Addr> ofmap_blocks;
    for (const auto& r : l.trace) {
        if (r.tensor == Tensor_kind::ifmap)
            for_each_block(r, [&](Addr a) { ifmap_blocks.insert(a); });
        if (r.tensor == Tensor_kind::ofmap)
            for_each_block(r, [&](Addr a) { ofmap_blocks.insert(a); });
    }
    // Every byte of both tensors must be covered by the trace.
    const u64 ifmap_expected = ceil_div(l.layer->ifmap_bytes(), k_block_bytes);
    const u64 ofmap_expected = ceil_div(l.layer->ofmap_bytes(), k_block_bytes);
    EXPECT_EQ(ifmap_blocks.size(), ifmap_expected);
    EXPECT_EQ(ofmap_blocks.size(), ofmap_expected);
    // Regions start where the memory map says.
    EXPECT_EQ(*ifmap_blocks.begin(), Memory_map::ifmap_addr(0));
    EXPECT_EQ(*ofmap_blocks.begin(), Memory_map::ofmap_addr(0));
}

TEST(Trace, WeightsCoveredOncePerRowTileWhenNotResident)
{
    // Edge NPU, weights too large to stay resident.
    const auto layer = Layer_desc::make_conv("c", 30, 30, 256, 3, 3, 512, 1);
    const auto sim = simulate_one(layer, Npu_config::edge());
    const auto& l = sim.layers[0];
    ASSERT_FALSE(l.plan.weights_resident);

    Bytes weight_read = 0;
    for (const auto& r : l.trace)
        if (r.tensor == Tensor_kind::weight) weight_read += r.length;
    EXPECT_EQ(weight_read,
              layer.weight_bytes() * static_cast<Bytes>(l.plan.m_tiles));
}

TEST(Trace, HaloBlocksAreRereadAcrossTiles)
{
    const auto layer = Layer_desc::make_conv("c", 226, 226, 16, 3, 3, 16, 1);
    const auto sim = simulate_one(layer, Npu_config::edge());
    const auto& l = sim.layers[0];
    ASSERT_GT(l.plan.m_tiles, 1);
    ASSERT_GT(l.plan.halo_rows, 0);

    std::map<Addr, int> touches;
    for (const auto& r : l.trace)
        if (r.tensor == Tensor_kind::ifmap)
            for_each_block(r, [&](Addr a) { ++touches[a]; });

    const u64 reread = static_cast<u64>(
        std::count_if(touches.begin(), touches.end(),
                      [](const auto& kv) { return kv.second > 1; }));
    EXPECT_GT(reread, 0u);
    // Roughly halo_rows * row_bytes per tile boundary, in blocks.
    const u64 expected = static_cast<u64>(l.plan.m_tiles - 1) *
                         ceil_div(static_cast<Bytes>(l.plan.halo_rows) *
                                      l.plan.ifmap_row_bytes,
                                  k_block_bytes);
    EXPECT_NEAR(static_cast<double>(reread), static_cast<double>(expected),
                static_cast<double>(l.plan.m_tiles) * 2.0);
}

TEST(Trace, ReadWriteByteAccountingConsistent)
{
    const auto sim = simulate_one(Layer_desc::make_conv("c", 58, 58, 32, 3, 3, 64, 1),
                                  Npu_config::server());
    const auto& l = sim.layers[0];
    Bytes reads = 0;
    Bytes writes = 0;
    for (const auto& r : l.trace) {
        const Bytes b = r.block_count() * k_block_bytes;
        (r.is_write ? writes : reads) += b;
    }
    EXPECT_EQ(reads, l.read_bytes);
    EXPECT_EQ(writes, l.write_bytes);
    EXPECT_EQ(trace_block_bytes(l.trace), reads + writes);
}

TEST(Trace, OfmapWrittenExactlyOnce)
{
    const auto sim = simulate_one(Layer_desc::make_conv("c", 58, 58, 32, 3, 3, 64, 1),
                                  Npu_config::edge());
    const auto& l = sim.layers[0];
    std::map<Addr, int> writes;
    for (const auto& r : l.trace)
        if (r.is_write)
            for_each_block(r, [&](Addr a) { ++writes[a]; });
    for (const auto& [addr, n] : writes) EXPECT_EQ(n, 1) << std::hex << addr;
}

TEST(Trace, EmbeddingGathersStayInTable)
{
    const auto layer = Layer_desc::make_embedding("e", 5000, 64, 256);
    const auto sim = simulate_one(layer, Npu_config::server());
    const auto& l = sim.layers[0];

    const Addr table_begin = l.weight_base;
    const Addr table_end = table_begin + layer.weight_bytes();
    int gathers = 0;
    for (const auto& r : l.trace) {
        if (r.tensor != Tensor_kind::weight) continue;
        ++gathers;
        EXPECT_GE(r.begin, table_begin);
        EXPECT_LE(r.begin + r.length, table_end);
        EXPECT_EQ(r.length, 64u);
    }
    EXPECT_EQ(gathers, 256);
}

TEST(Trace, EmbeddingGathersAreDeterministic)
{
    const auto layer = Layer_desc::make_embedding("e", 5000, 64, 64);
    const auto a = simulate_one(layer, Npu_config::server());
    const auto b = simulate_one(layer, Npu_config::server());
    ASSERT_EQ(a.layers[0].trace.size(), b.layers[0].trace.size());
    for (std::size_t i = 0; i < a.layers[0].trace.size(); ++i)
        EXPECT_EQ(a.layers[0].trace[i].begin, b.layers[0].trace[i].begin);
}

TEST(Trace, NOuterMatmulStreamsWeightsOnce)
{
    const auto layer = Layer_desc::make_matmul("lm", 256, 512, 32000);
    const auto sim = simulate_one(layer, Npu_config::edge());
    const auto& l = sim.layers[0];
    ASSERT_TRUE(l.plan.n_outer);

    Bytes weight_read = 0;
    Bytes ifmap_read = 0;
    for (const auto& r : l.trace) {
        if (r.tensor == Tensor_kind::weight) weight_read += r.length;
        if (r.tensor == Tensor_kind::ifmap) ifmap_read += r.length;
    }
    EXPECT_EQ(weight_read, layer.weight_bytes());
    EXPECT_EQ(ifmap_read,
              layer.ifmap_bytes() * static_cast<Bytes>(l.plan.n_tiles));
}

}  // namespace
}  // namespace seda::accel
