// Model-level simulator invariants across the whole workload zoo.
#include <gtest/gtest.h>

#include <tuple>

#include "accel/accel_sim.h"
#include "models/zoo.h"

namespace seda::accel {
namespace {

class ZooSimTest
    : public ::testing::TestWithParam<std::tuple<std::string_view, std::string_view>> {
protected:
    Model_sim run() const
    {
        const auto [model_name, npu_name] = GetParam();
        const auto npu = npu_name == std::string_view("server") ? Npu_config::server()
                                                                : Npu_config::edge();
        return simulate_model(models::model_by_name(model_name), npu);
    }
};

TEST_P(ZooSimTest, EveryLayerSimulated)
{
    const auto sim = run();
    EXPECT_EQ(sim.layers.size(), sim.model->layers.size());
    for (std::size_t i = 0; i < sim.layers.size(); ++i) {
        EXPECT_EQ(sim.layers[i].layer_id, i);
        EXPECT_EQ(sim.layers[i].layer, &sim.model->layers[i]);
    }
}

TEST_P(ZooSimTest, ComputeLayersHaveCycles)
{
    const auto sim = run();
    for (const auto& l : sim.layers) {
        EXPECT_GT(l.compute.cycles, 0u) << l.layer->name;
        if (l.layer->is_compute()) {
            EXPECT_GT(l.compute.folds, 0u) << l.layer->name;
            EXPECT_GT(l.compute.utilization, 0.0) << l.layer->name;
            EXPECT_LE(l.compute.utilization, 1.0) << l.layer->name;
        }
    }
}

TEST_P(ZooSimTest, TrafficAtLeastCompulsory)
{
    const auto sim = run();
    for (const auto& l : sim.layers) {
        // DRAM volume can never be below the tensor footprint (compulsory
        // misses); block rounding only adds.
        const Bytes compulsory_reads = l.layer->kind == Layer_kind::embedding
                                           ? l.layer->ofmap_bytes()
                                           : l.layer->ifmap_bytes();
        EXPECT_GE(l.read_bytes + k_block_bytes, compulsory_reads) << l.layer->name;
        EXPECT_GE(l.write_bytes + k_block_bytes, l.layer->ofmap_bytes()) << l.layer->name;
    }
}

TEST_P(ZooSimTest, WeightRegionsDoNotOverlap)
{
    const auto sim = run();
    for (std::size_t i = 1; i < sim.layers.size(); ++i) {
        const auto& prev = sim.model->layers[i - 1];
        EXPECT_GE(sim.map.weight_addr[i],
                  sim.map.weight_addr[i - 1] + prev.weight_bytes())
            << prev.name;
    }
}

TEST_P(ZooSimTest, ActivationsPingPong)
{
    const auto sim = run();
    for (std::size_t i = 0; i < sim.layers.size(); ++i) {
        EXPECT_EQ(sim.layers[i].ifmap_base, Memory_map::ifmap_addr(i));
        EXPECT_EQ(sim.layers[i].ofmap_base, Memory_map::ofmap_addr(i));
        EXPECT_NE(sim.layers[i].ifmap_base, sim.layers[i].ofmap_base);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooSimTest,
    ::testing::Combine(::testing::Values("let", "alex", "mob", "rest", "goo", "dlrm",
                                         "algo", "ds2", "fast", "ncf", "sent", "trf",
                                         "yolo"),
                       ::testing::Values("server", "edge")),
    [](const auto& pinfo) {
        return std::string(std::get<0>(pinfo.param)) + "_" +
               std::string(std::get<1>(pinfo.param));
    });

TEST(AccelSim, EdgeRefetchesMoreThanServer)
{
    // Smaller buffers force halo + weight refetch: edge traffic >= server.
    const auto server = simulate_model(models::resnet18(), Npu_config::server());
    const auto edge = simulate_model(models::resnet18(), Npu_config::edge());
    EXPECT_GE(edge.total_traffic_bytes(), server.total_traffic_bytes());
}

TEST(AccelSim, RejectsEmptyModel)
{
    Model_desc empty;
    empty.name = "empty";
    EXPECT_THROW((void)simulate_model(empty, Npu_config::server()), Seda_error);
}

TEST(AccelSim, OwnsItsModel)
{
    // The Model_sim must stay valid after the caller's Model_desc is gone
    // (regression test for the dangling-pointer bug found in development).
    Model_sim sim = [] {
        return simulate_model(models::lenet(), Npu_config::edge());
    }();
    const Model_sim moved = std::move(sim);
    EXPECT_EQ(moved.layers[0].layer->name, "conv1");
    EXPECT_GT(moved.total_traffic_bytes(), 0u);
}

}  // namespace
}  // namespace seda::accel
