// Tiling-plan invariants: SRAM budgets, halo geometry, loop-order choice.
#include <gtest/gtest.h>

#include <tuple>

#include "accel/tiler.h"
#include "common/error.h"
#include "models/zoo.h"

namespace seda::accel {
namespace {

TEST(Tiler, HaloRowsIsFilterMinusStride)
{
    const auto npu = Npu_config::edge();
    const auto c3s1 = plan_tiling(Layer_desc::make_conv("a", 58, 58, 64, 3, 3, 64, 1), npu);
    EXPECT_EQ(c3s1.halo_rows, 2);
    const auto c3s2 = plan_tiling(Layer_desc::make_conv("b", 57, 57, 64, 3, 3, 64, 2), npu);
    EXPECT_EQ(c3s2.halo_rows, 1);
    const auto c5s1 = plan_tiling(Layer_desc::make_conv("c", 28, 28, 64, 5, 5, 64, 1), npu);
    EXPECT_EQ(c5s1.halo_rows, 4);
    // Stride == filter (pooling-style): no overlap.
    const auto p2s2 = plan_tiling(Layer_desc::make_pool("p", 28, 28, 64, 2, 2), npu);
    EXPECT_EQ(p2s2.halo_rows, 0);
}

TEST(Tiler, MatmulHasNoHalo)
{
    const auto p =
        plan_tiling(Layer_desc::make_matmul("mm", 256, 512, 512), Npu_config::edge());
    EXPECT_EQ(p.halo_rows, 0);
}

TEST(Tiler, RowTilesCoverOutput)
{
    const auto layer = Layer_desc::make_conv("c", 114, 114, 64, 3, 3, 128, 1);
    const auto p = plan_tiling(layer, Npu_config::edge());
    EXPECT_GE(p.t_oh * p.m_tiles, layer.ofmap_h());
    EXPECT_LT(p.t_oh * (p.m_tiles - 1), layer.ofmap_h());
}

TEST(Tiler, ChannelTilesCoverWeights)
{
    const auto layer = Layer_desc::make_conv("c", 16, 16, 512, 3, 3, 512, 1);
    const auto p = plan_tiling(layer, Npu_config::edge());
    EXPECT_GE(static_cast<u64>(p.t_n) * static_cast<u64>(p.n_tiles),
              layer.gemm_n_dim());
}

TEST(Tiler, ServerBuffersHoldWholeSmallLayers)
{
    const auto layer = Layer_desc::make_conv("c", 30, 30, 64, 3, 3, 64, 1);
    const auto p = plan_tiling(layer, Npu_config::server());
    EXPECT_EQ(p.m_tiles, 1);
    EXPECT_TRUE(p.weights_resident);
    EXPECT_EQ(p.halo_refetch_bytes(), 0u);
}

TEST(Tiler, HaloRefetchFormula)
{
    const auto layer = Layer_desc::make_conv("c", 226, 226, 64, 3, 3, 64, 1);
    const auto p = plan_tiling(layer, Npu_config::edge());
    ASSERT_GT(p.m_tiles, 1);
    EXPECT_EQ(p.halo_refetch_bytes(), static_cast<Bytes>(p.m_tiles - 1) *
                                          static_cast<Bytes>(p.halo_rows) *
                                          p.ifmap_row_bytes);
}

TEST(Tiler, NOuterOnlyForNonResidentMatmul)
{
    // Vocabulary projection: 16 MB of weights on the edge NPU.
    const auto lm = Layer_desc::make_matmul("lm", 256, 512, 32000);
    const auto p = plan_tiling(lm, Npu_config::edge());
    EXPECT_FALSE(p.weights_resident);
    EXPECT_TRUE(p.n_outer);

    // Small matmul: weights resident, m-outer.
    const auto small = Layer_desc::make_matmul("s", 256, 64, 64);
    EXPECT_FALSE(plan_tiling(small, Npu_config::edge()).n_outer);

    // Convolutions never flip to n-outer.
    const auto conv = Layer_desc::make_conv("c", 226, 226, 64, 3, 3, 512, 1);
    EXPECT_FALSE(plan_tiling(conv, Npu_config::edge()).n_outer);
}

TEST(Tiler, KSplitOnlyWhenSingleChannelOverflows)
{
    // One output channel's weights = 200 KB > the edge 80 KB weight buffer.
    const auto fc = Layer_desc::make_fc("fc", 200 * 1024, 16);
    const auto p = plan_tiling(fc, Npu_config::edge());
    EXPECT_GT(p.k_tiles, 1);
    EXPECT_EQ(p.t_n, 1);
    // Normal FC stays unsplit.
    const auto ok = Layer_desc::make_fc("ok", 4096, 1000);
    EXPECT_EQ(plan_tiling(ok, Npu_config::edge()).k_tiles, 1);
}

TEST(Tiler, RejectsEmbedding)
{
    const auto e = Layer_desc::make_embedding("e", 1000, 64, 16);
    EXPECT_THROW((void)plan_tiling(e, Npu_config::edge()), Seda_error);
}

// Property sweep: every compute/pool layer of every zoo model, on both NPUs,
// satisfies the SRAM-budget invariants (or degenerates to t_oh == 1).
class TilerZooTest
    : public ::testing::TestWithParam<std::tuple<std::string_view, std::string_view>> {};

TEST_P(TilerZooTest, BudgetsRespected)
{
    const auto [model_name, npu_name] = GetParam();
    const auto npu =
        npu_name == std::string_view("server") ? Npu_config::server() : Npu_config::edge();
    const auto model = models::model_by_name(model_name);
    for (const auto& layer : model.layers) {
        if (layer.kind == Layer_kind::embedding) continue;
        const auto p = plan_tiling(layer, npu);
        EXPECT_GE(p.t_oh, 1) << layer.name;
        EXPECT_GE(p.t_n, 1) << layer.name;
        const Bytes ifmap_need =
            static_cast<Bytes>(p.ifmap_tile_rows) * p.ifmap_row_bytes;
        const Bytes ofmap_need = static_cast<Bytes>(p.t_oh) * p.ofmap_row_bytes;
        if (p.t_oh > 1) {
            EXPECT_LE(ifmap_need, npu.ifmap_buf_bytes()) << layer.name;
            EXPECT_LE(ofmap_need, npu.ofmap_buf_bytes()) << layer.name;
        }
        if (p.k_tiles == 1 && layer.weight_bytes() > 0) {
            const Bytes wgt_tile = static_cast<Bytes>(p.t_n) *
                                   (layer.weight_bytes() / layer.gemm_n_dim());
            EXPECT_LE(wgt_tile, npu.weight_buf_bytes()) << layer.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, TilerZooTest,
    ::testing::Combine(::testing::Values("let", "alex", "mob", "rest", "goo", "dlrm",
                                         "algo", "ds2", "fast", "ncf", "sent", "trf",
                                         "yolo"),
                       ::testing::Values("server", "edge")),
    [](const auto& pinfo) {
        return std::string(std::get<0>(pinfo.param)) + "_" +
               std::string(std::get<1>(pinfo.param));
    });

}  // namespace
}  // namespace seda::accel
