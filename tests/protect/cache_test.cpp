// Metadata cache: LRU, write-back, write-allocate semantics (Sec. IV-A).
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "protect/metadata_cache.h"

namespace seda::protect {
namespace {

TEST(Cache, MissThenHit)
{
    Metadata_cache c(1024, 2);
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13F, false).hit);  // same 64 B line
    EXPECT_FALSE(c.access(0x140, false).hit);  // next line
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way, 2 sets of 64 B lines: set = (addr/64) % 2.
    Metadata_cache c(256, 2);
    // Fill set 0 with lines A (0x000) and B (0x080).
    c.access(0x000, false);
    c.access(0x080, false);
    // Touch A so B becomes LRU.
    c.access(0x000, false);
    // New line C (0x100, set 0) must evict B, keeping A.
    c.access(0x100, false);
    EXPECT_TRUE(c.access(0x000, false).hit);   // A survived
    EXPECT_FALSE(c.access(0x080, false).hit);  // B evicted
}

TEST(Cache, DirtyEvictionWritesBack)
{
    Metadata_cache c(256, 2);
    c.access(0x000, true);  // dirty A in set 0
    c.access(0x080, false);
    c.access(0x100, false);  // evicts A (LRU) -> writeback
    bool seen_wb = false;
    // A was LRU and dirty; one of the two fills must have reported it.
    // Re-fill A and force another eviction to observe the WB directly.
    const auto acc = c.access(0x180, false);  // set 0 again
    seen_wb = acc.writeback || c.stats().writebacks > 0;
    EXPECT_TRUE(seen_wb);
}

TEST(Cache, WritebackCarriesVictimAddress)
{
    Metadata_cache c(128, 1);  // direct-mapped, 2 sets
    c.access(0x000, true);     // set 0, dirty
    const auto acc = c.access(0x080, false);  // set 0, evicts 0x000
    EXPECT_TRUE(acc.writeback);
    EXPECT_EQ(acc.writeback_addr, 0x000u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Metadata_cache c(128, 1);
    c.access(0x000, false);
    const auto acc = c.access(0x080, false);
    EXPECT_FALSE(acc.writeback);
}

TEST(Cache, DirtyBitSticksUntilEviction)
{
    Metadata_cache c(128, 1);
    c.access(0x000, true);
    c.access(0x000, false);  // read hit must not clean the line
    const auto acc = c.access(0x080, false);
    EXPECT_TRUE(acc.writeback);
}

TEST(Cache, FlushDirtyWritesAllDirtyLines)
{
    Metadata_cache c(1024, 4);
    c.access(0x000, true);
    c.access(0x040, true);
    c.access(0x080, false);
    std::vector<Addr> flushed;
    c.flush_dirty([&](Addr a) { flushed.push_back(a); });
    EXPECT_EQ(flushed.size(), 2u);
    // Second flush is a no-op (lines now clean).
    flushed.clear();
    c.flush_dirty([&](Addr a) { flushed.push_back(a); });
    EXPECT_TRUE(flushed.empty());
}

TEST(Cache, ClearResets)
{
    Metadata_cache c(1024, 4);
    c.access(0x000, true);
    c.clear();
    EXPECT_EQ(c.stats().misses, 0u);
    EXPECT_FALSE(c.access(0x000, false).hit);
}

TEST(Cache, StreamingThrashesSmallCache)
{
    // A 8 KiB cache touched by a long stream of distinct lines: hit rate ~0.
    Metadata_cache c(8 * 1024, 8);
    for (Addr a = 0; a < 1024 * 1024; a += 64) c.access(a, false);
    EXPECT_LT(c.stats().hit_rate(), 0.01);
}

TEST(Cache, HotSetAlwaysHits)
{
    Metadata_cache c(8 * 1024, 8);
    for (int round = 0; round < 10; ++round)
        for (Addr a = 0; a < 4 * 1024; a += 64) c.access(a, false);
    // After the first cold round, everything fits.
    EXPECT_GT(c.stats().hit_rate(), 0.85);
}

class CacheConfigTest : public ::testing::TestWithParam<std::pair<Bytes, int>> {};

TEST_P(CacheConfigTest, CapacityIsRespected)
{
    const auto [capacity, ways] = GetParam();
    Metadata_cache c(capacity, ways);
    const u64 lines = capacity / 64;
    // Fill exactly `lines` distinct lines, then revisit: all hits.
    for (u64 i = 0; i < lines; ++i) c.access(i * 64, false);
    u64 hits_before = c.stats().hits;
    for (u64 i = 0; i < lines; ++i) c.access(i * 64, false);
    EXPECT_EQ(c.stats().hits - hits_before, lines);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CacheConfigTest,
                         ::testing::Values(std::pair<Bytes, int>{1024, 1},
                                           std::pair<Bytes, int>{8 * 1024, 8},
                                           std::pair<Bytes, int>{16 * 1024, 8},
                                           std::pair<Bytes, int>{4096, 4}));

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Metadata_cache(64, 2), Seda_error);   // below one set
    EXPECT_THROW(Metadata_cache(0, 1), Seda_error);
    EXPECT_THROW(Metadata_cache(1024, 0), Seda_error);
    EXPECT_THROW(Metadata_cache(1024, 2, 48), Seda_error);  // non-pow2 line
    // 3 ways x 64 B = 192; 1024/192 -> 5 sets (not a power of two).
    EXPECT_THROW(Metadata_cache(1024, 3), Seda_error);
}

}  // namespace
}  // namespace seda::protect
