// Protection-scheme trace rewriting: baseline passthrough, unit-MAC
// amplification, metadata traffic ratios, SGX vs MGX, end-of-model flush.
#include <gtest/gtest.h>

#include <map>

#include "accel/accel_sim.h"
#include "models/zoo.h"
#include "protect/unit_scheme.h"

namespace seda::protect {
namespace {

using accel::Layer_desc;
using accel::Model_desc;
using accel::Npu_config;

accel::Model_sim conv_sim(const Npu_config& npu = Npu_config::server())
{
    Model_desc m;
    m.name = "one-conv";
    m.layers = {Layer_desc::make_conv("c", 58, 58, 32, 3, 3, 64, 1)};
    return accel::simulate_model(std::move(m), npu);
}

Bytes bytes_with_tag(const Layer_protect_result& r, dram::Traffic_tag tag)
{
    Bytes b = 0;
    for (const auto& req : r.timed_stream)
        if (req.tag == tag) b += k_block_bytes;
    return b;
}

TEST(Baseline, PassesTraceThroughUnchanged)
{
    const auto sim = conv_sim();
    Baseline_scheme base;
    base.begin_model(sim);
    const auto res = base.transform_layer(sim.layers[0]);
    EXPECT_EQ(res.timed_bytes(), sim.layers[0].read_bytes + sim.layers[0].write_bytes);
    EXPECT_EQ(res.prefetch_bytes, 0u);
    EXPECT_EQ(res.verify_events, 0u);
    EXPECT_EQ(res.mac_demand_misses, 0u);
    EXPECT_EQ(bytes_with_tag(res, dram::Traffic_tag::mac), 0u);
}

TEST(Baseline, HasNoCryptoEngines)
{
    Baseline_scheme base;
    EXPECT_EQ(base.crypto_engine_equivalents(Npu_config::server()), 0);
}

TEST(UnitScheme, Mgx64AddsOneEighthMacTraffic)
{
    // 8 B MAC per 64 B unit, 8 MACs per line: one MAC line fill per 8 data
    // blocks on a cold streaming pass, plus dirty-line writebacks from the
    // ofmap writes -> mac bytes land between 1/8 and ~1/6 of data bytes.
    const auto sim = conv_sim();
    auto mgx = make_mgx_scheme(64);
    mgx.begin_model(sim);
    const auto res = mgx.transform_layer(sim.layers[0]);
    const double data = static_cast<double>(bytes_with_tag(res, dram::Traffic_tag::data));
    const double mac = static_cast<double>(bytes_with_tag(res, dram::Traffic_tag::mac));
    EXPECT_GE(mac, data * 0.120);
    EXPECT_LE(mac, data * 0.190);
    EXPECT_EQ(res.prefetch_bytes, 0u);  // MGX: no VN / tree traffic
}

TEST(UnitScheme, Sgx64AddsVnTrafficOnTop)
{
    const auto sim = conv_sim();
    auto sgx = make_sgx_scheme(64);
    auto mgx = make_mgx_scheme(64);
    sgx.begin_model(sim);
    mgx.begin_model(sim);
    const auto rs = sgx.transform_layer(sim.layers[0]);
    const auto rm = mgx.transform_layer(sim.layers[0]);
    EXPECT_GT(rs.prefetch_bytes, 0u);
    EXPECT_EQ(rm.prefetch_bytes, 0u);
    // Identical demand-path MAC behaviour.
    EXPECT_EQ(bytes_with_tag(rs, dram::Traffic_tag::mac),
              bytes_with_tag(rm, dram::Traffic_tag::mac));
    // VN line per 8 blocks plus tree fills: prefetch within sane bounds.
    const Bytes data = bytes_with_tag(rs, dram::Traffic_tag::data);
    EXPECT_GT(rs.prefetch_bytes, data / 16);
    EXPECT_LT(rs.prefetch_bytes, data / 2);
}

TEST(UnitScheme, NoAmplificationAt64B)
{
    const auto sim = conv_sim();
    auto mgx = make_mgx_scheme(64);
    mgx.begin_model(sim);
    const auto res = mgx.transform_layer(sim.layers[0]);
    EXPECT_EQ(bytes_with_tag(res, dram::Traffic_tag::amplification), 0u);
}

TEST(UnitScheme, CoarseUnitsAmplifyGathers)
{
    // Embedding gathers read 64 B rows; at 512 B units each gather drags in
    // 7 extra blocks.
    Model_desc m;
    m.name = "gather";
    m.layers = {Layer_desc::make_embedding("e", 10000, 64, 128)};
    const auto sim = accel::simulate_model(std::move(m), Npu_config::server());

    auto mgx512 = make_mgx_scheme(512);
    mgx512.begin_model(sim);
    const auto res = mgx512.transform_layer(sim.layers[0]);
    const Bytes ampl = bytes_with_tag(res, dram::Traffic_tag::amplification);
    EXPECT_GT(ampl, 128u * 6 * k_block_bytes);  // most gathers pay ~7 blocks
}

TEST(UnitScheme, VerifyEventsCountUnits)
{
    const auto sim = conv_sim();
    auto mgx64 = make_mgx_scheme(64);
    auto mgx512 = make_mgx_scheme(512);
    mgx64.begin_model(sim);
    mgx512.begin_model(sim);
    const u64 e64 = mgx64.transform_layer(sim.layers[0]).verify_events;
    const u64 e512 = mgx512.transform_layer(sim.layers[0]).verify_events;
    EXPECT_GT(e64, e512);
    // Units shrink 8x; events should shrink by roughly that factor.
    EXPECT_NEAR(static_cast<double>(e64) / static_cast<double>(e512), 8.0, 1.5);
}

TEST(UnitScheme, WritesDirtyMacLinesFlushAtEnd)
{
    const auto sim = conv_sim();
    auto mgx = make_mgx_scheme(64);
    mgx.begin_model(sim);
    (void)mgx.transform_layer(sim.layers[0]);
    const auto flush = mgx.end_model();
    // The ofmap writes dirtied MAC lines that must drain as write traffic.
    Bytes mac_writes = 0;
    for (const auto& req : flush.timed_stream) {
        EXPECT_TRUE(req.is_write);
        EXPECT_EQ(req.tag, dram::Traffic_tag::mac);
        mac_writes += k_block_bytes;
    }
    EXPECT_GT(mac_writes, 0u);
}

TEST(UnitScheme, ReadPathMissesAreCountedAsStalls)
{
    const auto sim = conv_sim();
    auto mgx = make_mgx_scheme(64);
    mgx.begin_model(sim);
    const auto res = mgx.transform_layer(sim.layers[0]);
    EXPECT_GT(res.mac_demand_misses, 0u);
    // Misses can never exceed the MAC line fills.
    EXPECT_LE(res.mac_demand_misses * k_block_bytes,
              bytes_with_tag(res, dram::Traffic_tag::mac));
}

TEST(UnitScheme, BeginModelResetsCaches)
{
    const auto sim = conv_sim();
    auto mgx = make_mgx_scheme(64);
    mgx.begin_model(sim);
    const auto first = mgx.transform_layer(sim.layers[0]);
    mgx.begin_model(sim);
    const auto second = mgx.transform_layer(sim.layers[0]);
    EXPECT_EQ(first.timed_bytes(), second.timed_bytes());
    EXPECT_EQ(first.mac_demand_misses, second.mac_demand_misses);
}

TEST(UnitScheme, ProtectedSchemesProvisionCryptoBandwidth)
{
    auto sgx = make_sgx_scheme(64);
    // Server link = 20 B/NPU-cycle -> 2 engine-equivalents of 16 B/cycle.
    EXPECT_EQ(sgx.crypto_engine_equivalents(Npu_config::server()), 2);
    EXPECT_EQ(sgx.crypto_engine_equivalents(Npu_config::edge()), 1);
}

TEST(UnitScheme, RejectsBadUnitSize)
{
    Unit_scheme_config cfg;
    cfg.unit_bytes = 96;  // not a power of two
    EXPECT_THROW((Unit_mac_scheme{"bad", cfg}), Seda_error);
    cfg.unit_bytes = 32;  // below a burst
    EXPECT_THROW((Unit_mac_scheme{"bad", cfg}), Seda_error);
}

TEST(UnitScheme, SchemeNamesAreDescriptive)
{
    EXPECT_EQ(make_sgx_scheme(64).name(), "sgx-64b");
    EXPECT_EQ(make_sgx_scheme(512).name(), "sgx-512b");
    EXPECT_EQ(make_mgx_scheme(512).name(), "mgx-512b");
}

}  // namespace
}  // namespace seda::protect
