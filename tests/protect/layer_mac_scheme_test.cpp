// Securator-style tiling-oblivious layer MACs: near-zero traffic like SeDA,
// but redundant crypto work on halo re-reads and unverifiable gather units.
#include <gtest/gtest.h>

#include "accel/accel_sim.h"
#include "core/seda_scheme.h"
#include "models/zoo.h"
#include "protect/layer_mac_scheme.h"

namespace seda::protect {
namespace {

using accel::Layer_desc;
using accel::Model_desc;
using accel::Npu_config;

accel::Model_sim simulate(std::vector<Layer_desc> layers,
                          const Npu_config& npu = Npu_config::edge())
{
    Model_desc m;
    m.name = "t";
    m.layers = std::move(layers);
    return accel::simulate_model(std::move(m), npu);
}

TEST(Securator, NearZeroTrafficLikeSeda)
{
    const auto sim = simulate({Layer_desc::make_conv("c", 58, 58, 32, 3, 3, 64, 1)});
    Layer_mac_scheme sec(64);
    sec.begin_model(sim);
    const auto res = sec.transform_layer(sim.layers[0]);
    // Data + two layer-MAC lines; no per-block MAC fetches, no VN/tree.
    EXPECT_EQ(res.timed_bytes(),
              sim.layers[0].read_bytes + sim.layers[0].write_bytes + 2 * k_block_bytes);
    EXPECT_EQ(res.prefetch_bytes, 0u);
    EXPECT_EQ(res.mac_demand_misses, 0u);
}

TEST(Securator, HaloRereadsCauseRedundantFolds)
{
    // Conv with halo on the edge NPU re-reads overlap rows; the
    // tiling-oblivious fold re-verifies each of them.
    const auto sim = simulate({Layer_desc::make_conv("c", 226, 226, 16, 3, 3, 16, 1)});
    ASSERT_GT(sim.layers[0].plan.m_tiles, 1);
    Layer_mac_scheme sec(64);
    sec.begin_model(sim);
    (void)sec.transform_layer(sim.layers[0]);
    EXPECT_GT(sec.redundant_folds(), 0u);
}

TEST(Securator, RedundantWorkExtendsLayerDrain)
{
    const auto halo_sim =
        simulate({Layer_desc::make_conv("c", 226, 226, 16, 3, 3, 16, 1)});
    const auto flat_sim = simulate({Layer_desc::make_matmul("m", 512, 256, 256)});
    Layer_mac_scheme a(64);
    Layer_mac_scheme b(64);
    a.begin_model(halo_sim);
    b.begin_model(flat_sim);
    const auto halo_res = a.transform_layer(halo_sim.layers[0]);
    const auto flat_res = b.transform_layer(flat_sim.layers[0]);
    EXPECT_GT(halo_res.fixed_cycles, flat_res.fixed_cycles);
}

TEST(Securator, SedaAvoidsTheRedundantWork)
{
    // Same halo layer: SeDA's ledger folds each unit once; Securator's
    // oblivious fold does the work again for every re-read unit.
    const auto sim = simulate({Layer_desc::make_conv("c", 226, 226, 16, 3, 3, 16, 1)});
    Layer_mac_scheme sec(64);
    core::Seda_config dedup_cfg;
    dedup_cfg.reread = core::Reread_policy::dedup_only;
    core::Seda_scheme seda(dedup_cfg);
    sec.begin_model(sim);
    seda.begin_model(sim);
    const auto sec_events = sec.transform_layer(sim.layers[0]).verify_events;
    const auto seda_events = seda.transform_layer(sim.layers[0]).verify_events;
    EXPECT_GT(sec_events, seda_events);
}

TEST(Securator, GatherUnitsAreUnverifiable)
{
    // Embedding tables are only partially read: a layer-level fold can never
    // be checked for them (the false-negative exposure).
    const auto sim = simulate({Layer_desc::make_embedding("e", 10000, 64, 128)},
                              Npu_config::server());
    Layer_mac_scheme sec(64);
    sec.begin_model(sim);
    (void)sec.transform_layer(sim.layers[0]);
    EXPECT_GT(sec.unverifiable_units(), 0u);
}

TEST(Securator, RejectsBadUnit)
{
    EXPECT_THROW(Layer_mac_scheme(48), Seda_error);
    EXPECT_THROW(Layer_mac_scheme(32), Seda_error);
}

TEST(Securator, NameCarriesGranularity)
{
    EXPECT_EQ(Layer_mac_scheme(64).name(), "securator-64b");
    EXPECT_EQ(Layer_mac_scheme(512).name(), "securator-512b");
}

}  // namespace
}  // namespace seda::protect
