// Integrity-tree geometry: level counts, parent sharing, address ranges.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "protect/integrity_tree.h"

namespace seda::protect {
namespace {

TEST(Tree, LevelCountForSmallSpaces)
{
    // 8 VN lines, arity 8 -> one parent level (the root, off-chip levels = 1
    // because 8 -> 1 collapses in one step).
    EXPECT_EQ(Integrity_tree(0x1000, 8, 8).levels(), 1);
    // 64 lines -> 8 -> 1: two levels.
    EXPECT_EQ(Integrity_tree(0x1000, 64, 8).levels(), 2);
    // 65 lines -> 9 -> 2 -> 1: the straggler adds a level (8^2 < 65).
    EXPECT_EQ(Integrity_tree(0x1000, 65, 8).levels(), 3);
    EXPECT_EQ(Integrity_tree(0x1000, 512, 8).levels(), 3);
}

TEST(Tree, PaperScaleSpace)
{
    // 16 GB protected region: 32M VN lines, arity 8 -> 9 off-chip levels
    // (8^9 > 32M >= 8^8).
    const u64 vn_lines = (16ULL << 30) / (64 * 8);
    const Integrity_tree t(0x2'0000'0000ULL, vn_lines, 8);
    EXPECT_EQ(t.levels(), 9);
}

TEST(Tree, SiblingsShareParents)
{
    const Integrity_tree t(0x1000, 512, 8);
    // VN lines 0..7 share one level-1 parent; line 8 gets the next.
    const Addr p0 = t.node_addr(1, 0);
    for (u64 i = 1; i < 8; ++i) EXPECT_EQ(t.node_addr(1, i), p0);
    EXPECT_EQ(t.node_addr(1, 8), p0 + 64);
    // All of 0..63 share one level-2 node.
    const Addr g0 = t.node_addr(2, 0);
    for (u64 i = 1; i < 64; ++i) EXPECT_EQ(t.node_addr(2, i), g0);
    EXPECT_EQ(t.node_addr(2, 64), g0 + 64);
}

TEST(Tree, LevelsOccupyDisjointRegions)
{
    const Integrity_tree t(0x1000, 4096, 8);
    std::set<Addr> addrs;
    for (int level = 1; level <= t.levels(); ++level)
        for (u64 line : {u64{0}, u64{100}, u64{4095}})
            addrs.insert(t.node_addr(level, line));
    // Distinct levels must never alias: every (level, distinct-parent) pair
    // above produced a unique address.
    EXPECT_EQ(addrs.size(), static_cast<std::size_t>(t.levels()) * 2 + 1);
}

TEST(Tree, NodesLiveAboveBase)
{
    const Integrity_tree t(0x5000, 4096, 8);
    for (int level = 1; level <= t.levels(); ++level)
        EXPECT_GE(t.node_addr(level, 4095), 0x5000u);
}

TEST(Tree, WalkTerminatesAtRoot)
{
    const Integrity_tree t(0x1000, 32 * 1024 * 1024, 8);
    EXPECT_TRUE(t.is_root_level(t.levels()));
    EXPECT_FALSE(t.is_root_level(t.levels() - 1));
}

TEST(Tree, BadLevelThrows)
{
    const Integrity_tree t(0x1000, 64, 8);
    EXPECT_THROW((void)t.node_addr(0, 0), Seda_error);
    EXPECT_THROW((void)t.node_addr(3, 0), Seda_error);
}

TEST(Tree, RejectsBadConfig)
{
    EXPECT_THROW(Integrity_tree(0, 0, 8), Seda_error);
    EXPECT_THROW(Integrity_tree(0, 64, 1), Seda_error);
}

TEST(Tree, WiderArityIsShallower)
{
    const u64 lines = 1 << 20;
    EXPECT_LT(Integrity_tree(0, lines, 16).levels(), Integrity_tree(0, lines, 4).levels());
}

}  // namespace
}  // namespace seda::protect
