// Cross-module accounting identity: the amplification bytes a unit-MAC
// scheme actually emits must equal the analytic projection the optBlk
// search scores candidates with.  This ties the two independent
// implementations of "what does a coarse unit cost" together.
#include <gtest/gtest.h>

#include "accel/accel_sim.h"
#include "core/optblk_search.h"
#include "models/zoo.h"
#include "protect/unit_scheme.h"

namespace seda::protect {
namespace {

using accel::Layer_desc;
using accel::Model_desc;
using accel::Npu_config;

Bytes emitted_amplification(const Layer_protect_result& r)
{
    Bytes b = 0;
    for (const auto& req : r.timed_stream)
        if (req.tag == dram::Traffic_tag::amplification) b += k_block_bytes;
    return b;
}

class AmplificationIdentityTest : public ::testing::TestWithParam<Bytes> {};

TEST_P(AmplificationIdentityTest, SchemeMatchesProjection)
{
    Model_desc m;
    m.name = "t";
    // Row size 58*24 = 1392 B: misaligned with every unit above 64 B, so
    // coarse units genuinely amplify.
    m.layers = {Layer_desc::make_conv("c", 58, 58, 24, 3, 3, 24, 1)};
    const auto sim = accel::simulate_model(std::move(m), Npu_config::edge());

    const Bytes unit = GetParam();
    auto scheme = make_mgx_scheme(unit);
    scheme.begin_model(sim);
    const auto res = scheme.transform_layer(sim.layers[0]);

    const Bytes projected =
        core::projected_amplification(sim.layers[0].trace, unit);
    EXPECT_EQ(emitted_amplification(res), projected);
}

INSTANTIATE_TEST_SUITE_P(Units, AmplificationIdentityTest,
                         ::testing::Values(64u, 128u, 512u, 4096u),
                         [](const auto& pinfo) {
                             return "unit" + std::to_string(pinfo.param);
                         });

TEST(AmplificationIdentity, GatherWorkload)
{
    Model_desc m;
    m.name = "g";
    m.layers = {Layer_desc::make_embedding("e", 5000, 64, 200)};
    const auto sim = accel::simulate_model(std::move(m), Npu_config::server());

    auto scheme = make_mgx_scheme(512);
    scheme.begin_model(sim);
    const auto res = scheme.transform_layer(sim.layers[0]);
    EXPECT_EQ(emitted_amplification(res),
              core::projected_amplification(sim.layers[0].trace, 512));
}

}  // namespace
}  // namespace seda::protect
