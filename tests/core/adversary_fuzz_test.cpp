// Randomized memory-adversary fuzzing against Secure_memory.
//
// A golden (in-core, trusted) copy of every unit runs alongside the secure
// memory.  The fuzzer interleaves honest writes with random attacks
// (tamper / swap / rollback) and checks the core integrity property after
// every read:
//
//     verified-ok  ==>  the returned plaintext equals the golden copy.
//
// With on-chip VNs no attack may break it (any corruption must surface as
// mac_mismatch / replay_detected).  With off-chip VNs the rollback attack
// must break it at least once -- demonstrating that freshness is load-
// bearing, not belt-and-braces.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "core/secure_memory.h"

namespace seda::core {
namespace {

struct Fuzz_world {
    Secure_memory mem;
    std::map<Addr, std::vector<u8>> golden;       ///< what the victim last wrote
    std::map<Addr, Secure_memory::Stored_unit> stash;  ///< attacker snapshots
    Rng rng;

    explicit Fuzz_world(bool onchip_vns, u64 seed)
        : mem(std::vector<u8>(16, 0x5E), std::vector<u8>(16, 0xDA),
              [&] {
                  Secure_memory::Config cfg;
                  cfg.onchip_vns = onchip_vns;
                  return cfg;
              }()),
          rng(seed)
    {
    }

    [[nodiscard]] Addr random_addr() { return 0x1000 + rng.next_below(16) * 64; }

    void honest_write()
    {
        const Addr a = random_addr();
        std::vector<u8> data(64);
        for (auto& b : data) b = rng.next_byte();
        mem.write(a, data, 0, 0, static_cast<u32>(a / 64));
        golden[a] = std::move(data);
    }

    /// Returns true when the integrity property was violated.
    bool checked_read(Addr a)
    {
        std::vector<u8> out(64);
        const auto status = mem.read(a, out, 0, 0, static_cast<u32>(a / 64));
        return status == Verify_status::ok && out != golden.at(a);
    }
};

class AdversaryFuzzTest : public ::testing::TestWithParam<u64> {};

TEST_P(AdversaryFuzzTest, OnchipVnsNeverAcceptCorruptData)
{
    Fuzz_world w(/*onchip_vns=*/true, GetParam());
    for (int i = 0; i < 32; ++i) w.honest_write();

    for (int step = 0; step < 600; ++step) {
        const u64 action = w.rng.next_below(6);
        const Addr a = w.random_addr();
        switch (action) {
            case 0:
            case 1: w.honest_write(); break;
            case 2:
                if (w.golden.count(a))
                    w.mem.tamper(a, w.rng.next_below(64), static_cast<u8>(1 + w.rng.next_below(255)));
                break;
            case 3: {
                const Addr b = w.random_addr();
                if (a != b && w.golden.count(a) && w.golden.count(b)) w.mem.swap_units(a, b);
                break;
            }
            case 4:
                if (w.golden.count(a)) w.stash[a] = w.mem.snapshot(a);
                break;
            case 5:
                if (w.stash.count(a)) w.mem.rollback(a, w.stash.at(a));
                break;
        }
        // Victim reads a random written unit; a verified-ok read must match
        // the golden copy regardless of what the adversary did.
        const Addr r = w.random_addr();
        if (w.golden.count(r)) {
            ASSERT_FALSE(w.checked_read(r)) << "corrupt data accepted at step " << step;
        }
    }
}

TEST_P(AdversaryFuzzTest, OffchipVnsFallToReplay)
{
    // The strawman accepts stale data under the same adversary: run until a
    // rollback lands after a newer honest write and the property breaks.
    Fuzz_world w(/*onchip_vns=*/false, GetParam());
    for (int i = 0; i < 8; ++i) w.honest_write();

    bool violated = false;
    for (int step = 0; step < 2000 && !violated; ++step) {
        const Addr a = w.random_addr();
        switch (w.rng.next_below(3)) {
            case 0:
                if (w.golden.count(a)) w.stash[a] = w.mem.snapshot(a);
                break;
            case 1: w.honest_write(); break;
            case 2:
                if (w.stash.count(a)) w.mem.rollback(a, w.stash.at(a));
                break;
        }
        for (const auto& [addr, data] : w.golden) {
            (void)data;
            if (w.checked_read(addr)) {
                violated = true;
                break;
            }
        }
    }
    EXPECT_TRUE(violated) << "replay never succeeded against off-chip VNs "
                             "(expected the strawman to fail)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversaryFuzzTest,
                         ::testing::Values(1u, 42u, 0xFEEDu, 0xC0FFEEu));

}  // namespace
}  // namespace seda::core
