// optBlk search: amplification projection and the alignment property the
// SeDA scheme relies on (chosen unit => zero amplification).
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "core/optblk_search.h"

namespace seda::core {
namespace {

using accel::Access_range;

std::vector<Access_range> tiled_ranges(Addr base, Bytes tile_bytes, int tiles)
{
    std::vector<Access_range> v;
    for (int t = 0; t < tiles; ++t) {
        Access_range r;
        r.begin = base + static_cast<Addr>(t) * tile_bytes;
        r.length = tile_bytes;
        v.push_back(r);
    }
    return v;
}

TEST(Amplification, ZeroWhenUnitDividesTiles)
{
    const auto ranges = tiled_ranges(0x1000, 4096, 8);
    EXPECT_EQ(projected_amplification(ranges, 64), 0u);
    EXPECT_EQ(projected_amplification(ranges, 512), 0u);
    EXPECT_EQ(projected_amplification(ranges, 4096), 0u);
}

TEST(Amplification, NonzeroWhenUnitStraddlesTiles)
{
    // 1.5 KiB tiles: a 1 KiB unit straddles every other boundary.
    const auto ranges = tiled_ranges(0x0, 1536, 8);
    EXPECT_EQ(projected_amplification(ranges, 64), 0u);  // 1536 = 24 blocks
    EXPECT_GT(projected_amplification(ranges, 1024), 0u);
}

TEST(Amplification, GathersAmplifyAtCoarseUnits)
{
    // Isolated 64 B gathers at 512 B-spread addresses.
    std::vector<Access_range> v;
    for (int i = 0; i < 16; ++i) {
        Access_range r;
        r.begin = static_cast<Addr>(i) * 4096;
        r.length = 64;
        v.push_back(r);
    }
    EXPECT_EQ(projected_amplification(v, 64), 0u);
    EXPECT_EQ(projected_amplification(v, 512), 16u * (512 - 64));
}

TEST(Search, PicksAlignedUnit)
{
    // Tile stride 1536 B: 512 does not divide it, 64/128/256... do up to 512?
    // 1536 = 3 * 512: 512 divides 1536 -> aligned; 1024 does not.
    const auto ranges = tiled_ranges(0x0, 1536, 16);
    const auto best = search_optblk(ranges, 1536 * 16);
    EXPECT_EQ(best.amplification_bytes, 0u);
    EXPECT_EQ(1536 % best.unit_bytes, 0u);
}

TEST(Search, PrefersCoarserAmongAligned)
{
    // All power-of-two units divide 4 KiB tiles; the ledger term must push
    // the search to the coarsest candidate.
    const auto ranges = tiled_ranges(0x0, 4096, 16);
    Optblk_params params;
    const auto best = search_optblk(ranges, 4096 * 16, params);
    EXPECT_EQ(best.unit_bytes, params.max_unit);
    EXPECT_EQ(best.amplification_bytes, 0u);
}

TEST(Search, AmplificationOutweighsLedgerByDefault)
{
    // Misaligned coarse candidates must lose to aligned finer ones.
    const auto ranges = tiled_ranges(0x0, 1536, 64);
    const auto best = search_optblk(ranges, 1536 * 64);
    EXPECT_EQ(best.amplification_bytes, 0u);
}

TEST(Search, GeometryCandidatesAreConsidered)
{
    // Tile stride 1152 B (18 blocks): only 64 and 128 among the power-of-two
    // candidates divide it, but the row-derived candidate 1152 is both
    // aligned and the coarsest -- the search must land on an
    // amplification-free unit either way.
    const auto ranges = tiled_ranges(0x0, 1152, 32);
    Optblk_params params;
    params.extra_candidates.push_back(1152);
    const auto best = search_optblk(ranges, 1152 * 32, params);
    EXPECT_EQ(best.amplification_bytes, 0u);
    EXPECT_GE(best.unit_bytes, 64u);
}

TEST(Search, UnitCountReflectsRegionSpan)
{
    const auto ranges = tiled_ranges(0x0, 4096, 4);
    const auto best = search_optblk(ranges, 4096 * 4);
    EXPECT_EQ(best.unit_count, (4096u * 4) / best.unit_bytes);
}

TEST(Search, RespectsBounds)
{
    const auto ranges = tiled_ranges(0x0, 4096, 4);
    Optblk_params params;
    params.min_unit = 128;
    params.max_unit = 512;
    const auto best = search_optblk(ranges, 4096 * 4, params);
    EXPECT_GE(best.unit_bytes, 128u);
    EXPECT_LE(best.unit_bytes, 512u);
}

TEST(Search, RejectsBadParams)
{
    const auto ranges = tiled_ranges(0x0, 4096, 1);
    Optblk_params params;
    params.min_unit = 48;
    EXPECT_THROW((void)search_optblk(ranges, 4096, params), Seda_error);
    params = {};
    params.max_unit = 32;
    EXPECT_THROW((void)search_optblk(ranges, 4096, params), Seda_error);
}

TEST(Search, EmptyRangesStillChoose)
{
    const auto best = search_optblk({}, 4096);
    EXPECT_EQ(best.amplification_bytes, 0u);
    EXPECT_GE(best.unit_bytes, 64u);
}

}  // namespace
}  // namespace seda::core
