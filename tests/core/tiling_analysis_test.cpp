// Intra-layer overlap and inter-layer alignment analysis (Fig. 3(b)).
#include <gtest/gtest.h>

#include "accel/accel_sim.h"
#include "core/tiling_analysis.h"
#include "models/zoo.h"

namespace seda::core {
namespace {

using accel::Layer_desc;
using accel::Model_desc;
using accel::Npu_config;

accel::Model_sim simulate(std::vector<Layer_desc> layers,
                          const Npu_config& npu = Npu_config::edge())
{
    Model_desc m;
    m.name = "t";
    m.layers = std::move(layers);
    return accel::simulate_model(std::move(m), npu);
}

TEST(Overlap, ConvWithStrideOneHasHalo)
{
    const auto sim =
        simulate({Layer_desc::make_conv("c", 226, 226, 16, 3, 3, 16, 1)});
    ASSERT_GT(sim.layers[0].plan.m_tiles, 1);
    const auto s = analyze_overlap(sim.layers[0]);
    EXPECT_GT(s.halo_refetch_bytes, 0u);
    EXPECT_GT(s.halo_fraction, 0.0);
    EXPECT_LT(s.halo_fraction, 0.5);
}

TEST(Overlap, MatmulHasNoHalo)
{
    const auto sim = simulate({Layer_desc::make_matmul("m", 512, 256, 256)});
    const auto s = analyze_overlap(sim.layers[0]);
    EXPECT_EQ(s.halo_refetch_bytes, 0u);
    EXPECT_DOUBLE_EQ(s.halo_fraction, 0.0);
}

TEST(Overlap, PoolingWithMatchedStrideHasNoHalo)
{
    const auto sim = simulate({Layer_desc::make_pool("p", 224, 224, 32, 2, 2)});
    const auto s = analyze_overlap(sim.layers[0]);
    EXPECT_EQ(s.halo_refetch_bytes, 0u);
}

TEST(Overlap, MatchesPlanPrediction)
{
    const auto sim =
        simulate({Layer_desc::make_conv("c", 226, 226, 16, 3, 3, 16, 1)});
    const auto& plan = sim.layers[0].plan;
    const auto s = analyze_overlap(sim.layers[0]);
    // Block rounding makes the measured value >= the exact byte formula.
    EXPECT_GE(s.halo_refetch_bytes + 2 * k_block_bytes * static_cast<Bytes>(plan.m_tiles),
              plan.halo_refetch_bytes());
}

TEST(Overlap, BigBuffersRemoveHalo)
{
    // The server NPU holds whole layers: single tile, no refetch.
    const auto sim = simulate({Layer_desc::make_conv("c", 226, 226, 16, 3, 3, 16, 1)},
                              Npu_config::server());
    EXPECT_EQ(sim.layers[0].plan.m_tiles, 1);
    EXPECT_EQ(analyze_overlap(sim.layers[0]).halo_refetch_bytes, 0u);
}

TEST(Overlap, WeightRefetchCounted)
{
    // Edge NPU with non-resident weights streams them per row tile.
    const auto sim =
        simulate({Layer_desc::make_conv("c", 30, 30, 256, 3, 3, 512, 1)});
    ASSERT_FALSE(sim.layers[0].plan.weights_resident);
    ASSERT_GT(sim.layers[0].plan.m_tiles, 1);
    const auto s = analyze_overlap(sim.layers[0]);
    EXPECT_GT(s.weight_refetch_bytes, 0u);
}

TEST(Alignment, StridesComeFromPlans)
{
    const auto sim = simulate({Layer_desc::make_conv("a", 114, 114, 32, 3, 3, 32, 1),
                               Layer_desc::make_conv("b", 114, 114, 32, 3, 3, 32, 1)});
    const auto info = analyze_alignment(sim.layers[0], sim.layers[1]);
    EXPECT_EQ(info.producer_stride_bytes,
              static_cast<Bytes>(sim.layers[0].plan.t_oh) *
                  sim.layers[0].plan.ofmap_row_bytes);
    EXPECT_GT(info.consumer_stride_bytes, 0u);
}

TEST(Alignment, UnitAlignedIffDividesBothStrides)
{
    Alignment_info info;
    info.producer_stride_bytes = 4096;
    info.consumer_stride_bytes = 6144;  // 1.5x producer
    EXPECT_TRUE(unit_aligned(info, 64));
    EXPECT_TRUE(unit_aligned(info, 2048));  // divides both
    EXPECT_FALSE(unit_aligned(info, 4096)); // divides producer only
    EXPECT_FALSE(unit_aligned(info, 0));
}

TEST(Alignment, ZeroStrideIsWildcard)
{
    Alignment_info info;
    info.producer_stride_bytes = 0;  // e.g. model input with no producer
    info.consumer_stride_bytes = 512;
    EXPECT_TRUE(unit_aligned(info, 512));
    EXPECT_FALSE(unit_aligned(info, 1024));
}

}  // namespace
}  // namespace seda::core
