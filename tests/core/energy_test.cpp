// Energy-model sanity: breakdowns, scheme ordering, parameter scaling.
#include <gtest/gtest.h>

#include "core/energy.h"
#include "core/experiment.h"
#include "models/zoo.h"

namespace seda::core {
namespace {

TEST(Energy, BaselinePaysNoCrypto)
{
    const auto sim = accel::simulate_model(models::lenet(), accel::Npu_config::server());
    protect::Baseline_scheme base;
    const auto stats = run_protected(sim, base);
    const auto e = estimate_energy(stats, sim);
    EXPECT_GT(e.dram_uj, 0.0);
    EXPECT_GT(e.compute_uj, 0.0);
    EXPECT_DOUBLE_EQ(e.crypto_uj, 0.0);
    EXPECT_DOUBLE_EQ(e.hash_uj, 0.0);
    EXPECT_DOUBLE_EQ(e.total_uj(), e.dram_uj + e.compute_uj);
}

TEST(Energy, ProtectedRunsPayCryptoAndHash)
{
    const auto sim = accel::simulate_model(models::lenet(), accel::Npu_config::server());
    auto seda = make_scheme("seda");
    const auto stats = run_protected(sim, *seda);
    const auto e = estimate_energy(stats, sim);
    EXPECT_GT(e.crypto_uj, 0.0);
    EXPECT_GT(e.hash_uj, 0.0);
}

TEST(Energy, OrderingFollowsTraffic)
{
    // More metadata bytes -> more DRAM energy: SGX > MGX > SeDA.
    const auto sim = accel::simulate_model(models::resnet18(), accel::Npu_config::server());
    double sgx = 0.0;
    double mgx = 0.0;
    double seda_e = 0.0;
    for (const auto& [id, out] : {std::pair<const char*, double*>{"sgx-64", &sgx},
                                  {"mgx-64", &mgx},
                                  {"seda", &seda_e}}) {
        auto scheme = make_scheme(id);
        const auto stats = run_protected(sim, *scheme);
        *out = estimate_energy(stats, sim).total_uj();
    }
    EXPECT_GT(sgx, mgx);
    EXPECT_GT(mgx, seda_e);
}

TEST(Energy, ScalesWithParams)
{
    const auto sim = accel::simulate_model(models::lenet(), accel::Npu_config::server());
    auto seda = make_scheme("seda");
    const auto stats = run_protected(sim, *seda);
    Energy_params cheap;
    Energy_params pricey;
    pricey.dram_pj_per_byte = 2.0 * cheap.dram_pj_per_byte;
    const auto a = estimate_energy(stats, sim, cheap);
    const auto b = estimate_energy(stats, sim, pricey);
    EXPECT_NEAR(b.dram_uj, 2.0 * a.dram_uj, 1e-9);
    EXPECT_DOUBLE_EQ(b.compute_uj, a.compute_uj);
}

TEST(Energy, TnpuSitsBetweenSgxAndMgx)
{
    // Tree-less: VN traffic but no tree walk -- energy (traffic) must land
    // strictly between the two families it interpolates.
    const auto sim = accel::simulate_model(models::resnet18(), accel::Npu_config::server());
    auto sgx = make_scheme("sgx-64");
    auto tnpu = make_scheme("tnpu-64");
    auto mgx = make_scheme("mgx-64");
    const auto e_sgx = run_protected(sim, *sgx).traffic_bytes;
    const auto e_tnpu = run_protected(sim, *tnpu).traffic_bytes;
    const auto e_mgx = run_protected(sim, *mgx).traffic_bytes;
    EXPECT_GT(e_sgx, e_tnpu);
    EXPECT_GT(e_tnpu, e_mgx);
}

}  // namespace
}  // namespace seda::core
