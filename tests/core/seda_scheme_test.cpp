// The SeDA protection engine: near-zero traffic, fold dedup for halo
// re-reads, gather-path MAC handling, ablation knobs.
#include <gtest/gtest.h>

#include "accel/accel_sim.h"
#include "core/seda_scheme.h"
#include "models/zoo.h"

namespace seda::core {
namespace {

using accel::Layer_desc;
using accel::Model_desc;
using accel::Npu_config;

accel::Model_sim simulate(std::vector<Layer_desc> layers,
                          const Npu_config& npu = Npu_config::edge())
{
    Model_desc m;
    m.name = "t";
    m.layers = std::move(layers);
    return accel::simulate_model(std::move(m), npu);
}

Bytes bytes_with_tag(const protect::Layer_protect_result& r, dram::Traffic_tag tag)
{
    Bytes b = 0;
    for (const auto& req : r.timed_stream)
        if (req.tag == tag) b += k_block_bytes;
    return b;
}

TEST(Seda, TrafficIsDataPlusLayerMacsOnly)
{
    const auto sim = simulate({Layer_desc::make_conv("c", 58, 58, 32, 3, 3, 64, 1)});
    Seda_scheme seda;
    seda.begin_model(sim);
    const auto res = seda.transform_layer(sim.layers[0]);

    EXPECT_EQ(bytes_with_tag(res, dram::Traffic_tag::mac), 0u);
    EXPECT_EQ(bytes_with_tag(res, dram::Traffic_tag::vn), 0u);
    EXPECT_EQ(bytes_with_tag(res, dram::Traffic_tag::amplification), 0u);
    EXPECT_EQ(res.prefetch_bytes, 0u);
    EXPECT_EQ(res.mac_demand_misses, 0u);
    // One layer-MAC line read now (paper fairness setting); the dirty line
    // publishes at end_model.
    EXPECT_EQ(bytes_with_tag(res, dram::Traffic_tag::layer_mac), k_block_bytes);
    EXPECT_EQ(bytes_with_tag(res, dram::Traffic_tag::data),
              sim.layers[0].read_bytes + sim.layers[0].write_bytes);

    Seda_scheme seda2;
    seda2.begin_model(sim);
    (void)seda2.transform_layer(sim.layers[0]);
    const auto tail = seda2.end_model();
    EXPECT_EQ(bytes_with_tag(tail, dram::Traffic_tag::layer_mac), k_block_bytes);
}

TEST(Seda, OnChipLayerMacsRemoveEvenThat)
{
    const auto sim = simulate({Layer_desc::make_conv("c", 58, 58, 32, 3, 3, 64, 1)});
    Seda_config cfg;
    cfg.layer_macs_offchip = false;
    Seda_scheme seda(cfg);
    seda.begin_model(sim);
    const auto res = seda.transform_layer(sim.layers[0]);
    EXPECT_EQ(bytes_with_tag(res, dram::Traffic_tag::layer_mac), 0u);
    EXPECT_EQ(res.timed_bytes(), sim.layers[0].read_bytes + sim.layers[0].write_bytes);
}

TEST(Seda, SearchedUnitsNeverAmplify)
{
    // Whole-model property on a real workload with halo overlap.
    const auto sim = accel::simulate_model(models::yolo_tiny(), Npu_config::edge());
    Seda_scheme seda;
    seda.begin_model(sim);
    for (const auto& layer : sim.layers) {
        const auto res = seda.transform_layer(layer);
        EXPECT_EQ(bytes_with_tag(res, dram::Traffic_tag::amplification), 0u)
            << layer.layer->name;
    }
}

TEST(Seda, HaloRereadsAreNotFoldedTwice)
{
    // A conv with halo on the edge NPU: distinct optBlk folds must not
    // exceed the region's unit count even though blocks are read twice.
    const auto sim = simulate({Layer_desc::make_conv("c", 226, 226, 16, 3, 3, 16, 1)});
    ASSERT_GT(sim.layers[0].plan.m_tiles, 1);

    Seda_config dedup_cfg;
    dedup_cfg.reread = Reread_policy::dedup_only;
    Seda_scheme dedup(dedup_cfg);
    dedup.begin_model(sim);
    const auto res = dedup.transform_layer(sim.layers[0]);

    const auto& choice = dedup.choices()[0];
    const Bytes region = sim.layers[0].layer->ifmap_bytes() +
                         sim.layers[0].layer->ofmap_bytes() +
                         sim.layers[0].layer->weight_bytes();
    // Every distinct unit folds exactly once: events <= ceil(region/unit)+slack.
    EXPECT_LE(res.verify_events, region / choice.ifmap.unit_bytes + 64);
}

TEST(Seda, RetainWindowRechecksHaloReads)
{
    const auto sim = simulate({Layer_desc::make_conv("c", 226, 226, 16, 3, 3, 16, 1)});
    Seda_config retain_cfg;
    retain_cfg.reread = Reread_policy::retain_window;
    Seda_config dedup_cfg;
    dedup_cfg.reread = Reread_policy::dedup_only;

    Seda_scheme retain(retain_cfg);
    Seda_scheme dedup(dedup_cfg);
    retain.begin_model(sim);
    dedup.begin_model(sim);
    const u64 retain_events = retain.transform_layer(sim.layers[0]).verify_events;
    const u64 dedup_events = dedup.transform_layer(sim.layers[0]).verify_events;
    // retain_window additionally verifies every re-read unit.
    EXPECT_GT(retain_events, dedup_events);
    // Traffic identical either way.
}

TEST(Seda, ForcedMisalignedUnitAmplifies)
{
    const auto sim = simulate({Layer_desc::make_conv("c", 58, 58, 24, 3, 3, 24, 1)});
    // row bytes = 58*24 = 1392, not divisible by 4096.
    Seda_config cfg;
    cfg.forced_unit = 4096;
    Seda_scheme seda(cfg);
    seda.begin_model(sim);
    const auto res = seda.transform_layer(sim.layers[0]);
    EXPECT_GT(bytes_with_tag(res, dram::Traffic_tag::amplification), 0u);
}

TEST(Seda, EmbeddingUsesStoredOrColocatedMacs)
{
    const auto sim = simulate({Layer_desc::make_embedding("e", 10000, 64, 256)},
                              Npu_config::server());
    // Colocated (default): no MAC traffic at all.
    {
        Seda_scheme seda;
        seda.begin_model(sim);
        EXPECT_TRUE(seda.choices()[0].weight_macs_stored);
        const auto res = seda.transform_layer(sim.layers[0]);
        EXPECT_EQ(bytes_with_tag(res, dram::Traffic_tag::mac), 0u);
        EXPECT_GT(res.verify_events, 0u);
    }
    // Separate region: MAC fills appear and read misses stall.
    {
        Seda_config cfg;
        cfg.colocate_gather_macs = false;
        Seda_scheme seda(cfg);
        seda.begin_model(sim);
        const auto res = seda.transform_layer(sim.layers[0]);
        EXPECT_GT(bytes_with_tag(res, dram::Traffic_tag::mac), 0u);
        EXPECT_GT(res.mac_demand_misses, 0u);
    }
}

TEST(Seda, ChoicesExposePerLayerDecisions)
{
    const auto sim = accel::simulate_model(models::resnet18(), Npu_config::server());
    Seda_scheme seda;
    seda.begin_model(sim);
    // One choice per layer plus the virtual final-ofmap epoch.
    ASSERT_EQ(seda.choices().size(), sim.layers.size() + 1);
    for (const auto& c : seda.choices()) {
        EXPECT_GE(c.ifmap.unit_bytes, 64u);
        EXPECT_EQ(c.ifmap.amplification_bytes, 0u);
    }
}

TEST(Seda, TransformBeforeBeginThrows)
{
    const auto sim = simulate({Layer_desc::make_conv("c", 6, 6, 1, 3, 3, 1, 1)});
    Seda_scheme seda;
    EXPECT_THROW((void)seda.transform_layer(sim.layers[0]), Seda_error);
}

TEST(Seda, LayerDrainConfigurable)
{
    const auto sim = simulate({Layer_desc::make_conv("c", 6, 6, 1, 3, 3, 1, 1)});
    Seda_config cfg;
    cfg.layer_check_drain_cycles = 1000;
    Seda_scheme seda(cfg);
    seda.begin_model(sim);
    EXPECT_EQ(seda.transform_layer(sim.layers[0]).fixed_cycles, 1000u);
}

TEST(Seda, EndModelFlushesStoredMacPath)
{
    const auto sim = simulate({Layer_desc::make_embedding("e", 10000, 64, 64)},
                              Npu_config::server());
    Seda_config cfg;
    cfg.colocate_gather_macs = false;
    Seda_scheme seda(cfg);
    seda.begin_model(sim);
    (void)seda.transform_layer(sim.layers[0]);
    const auto flush = seda.end_model();
    // Gathers only read: nothing dirty, so the flush carries no writes --
    // but it still drains the model-MAC comparison.
    EXPECT_GT(flush.fixed_cycles, 0u);
}

}  // namespace
}  // namespace seda::core
