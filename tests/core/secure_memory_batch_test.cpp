// Batch I/O through the functional secure memory: a batch must behave
// bit-for-bit like the same units issued one call at a time, and per-unit
// attack detection must keep firing inside a batch.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/secure_memory.h"

namespace seda::core {
namespace {

struct Keys {
    std::vector<u8> enc = std::vector<u8>(16);
    std::vector<u8> mac = std::vector<u8>(16);
    Keys()
    {
        Rng rng(0xBA7C);
        for (auto& b : enc) b = rng.next_byte();
        for (auto& b : mac) b = rng.next_byte();
    }
};

std::vector<std::vector<u8>> tile_data(std::size_t units, Bytes unit_bytes, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<u8>> tile(units);
    for (auto& unit : tile) {
        unit.resize(unit_bytes);
        for (auto& b : unit) b = rng.next_byte();
    }
    return tile;
}

constexpr std::size_t k_units = 16;
constexpr Bytes k_unit_bytes = 64;

std::vector<Secure_memory::Unit_write> make_writes(
    const std::vector<std::vector<u8>>& tile)
{
    std::vector<Secure_memory::Unit_write> batch;
    for (std::size_t i = 0; i < tile.size(); ++i)
        batch.push_back({0x1000 + i * k_unit_bytes, tile[i], 3, 1,
                         static_cast<u32>(i)});
    return batch;
}

std::vector<Secure_memory::Unit_read> make_reads(std::vector<std::vector<u8>>& out)
{
    std::vector<Secure_memory::Unit_read> batch;
    for (std::size_t i = 0; i < out.size(); ++i)
        batch.push_back({0x1000 + i * k_unit_bytes, out[i], 3, 1,
                         static_cast<u32>(i)});
    return batch;
}

TEST(SecureMemoryBatch, WriteReadRoundtrip)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    const auto tile = tile_data(k_units, k_unit_bytes, 1);
    mem.write_units(make_writes(tile));
    EXPECT_EQ(mem.unit_count(), k_units);

    auto out = tile_data(k_units, k_unit_bytes, 999);  // junk to overwrite
    const auto statuses = mem.read_units(make_reads(out));
    ASSERT_EQ(statuses.size(), k_units);
    for (std::size_t i = 0; i < k_units; ++i) {
        EXPECT_EQ(statuses[i], Verify_status::ok) << "unit " << i;
        EXPECT_EQ(out[i], tile[i]) << "unit " << i;
    }
}

TEST(SecureMemoryBatch, MatchesSingleCallsBitForBit)
{
    Keys k;
    Secure_memory batched(k.enc, k.mac);
    Secure_memory individual(k.enc, k.mac);
    const auto tile = tile_data(k_units, k_unit_bytes, 2);

    batched.write_units(make_writes(tile));
    for (std::size_t i = 0; i < k_units; ++i)
        individual.write(0x1000 + i * k_unit_bytes, tile[i], 3, 1, static_cast<u32>(i));

    for (std::size_t i = 0; i < k_units; ++i) {
        const Addr addr = 0x1000 + i * k_unit_bytes;
        const auto a = batched.snapshot(addr);
        const auto b = individual.snapshot(addr);
        EXPECT_EQ(a.ciphertext, b.ciphertext) << "unit " << i;
        EXPECT_EQ(a.mac, b.mac) << "unit " << i;
        EXPECT_EQ(a.stored_vn, b.stored_vn) << "unit " << i;
    }
    EXPECT_EQ(batched.fold_all_macs(), individual.fold_all_macs());

    // Read side: batch statuses and plaintext equal the one-by-one path.
    auto batch_out = tile_data(k_units, k_unit_bytes, 999);
    const auto statuses = batched.read_units(make_reads(batch_out));
    for (std::size_t i = 0; i < k_units; ++i) {
        const Addr addr = 0x1000 + i * k_unit_bytes;
        std::vector<u8> single_out(k_unit_bytes);
        EXPECT_EQ(individual.read(addr, single_out, 3, 1, static_cast<u32>(i)),
                  statuses[i]);
        EXPECT_EQ(single_out, batch_out[i]) << "unit " << i;
    }
}

TEST(SecureMemoryBatch, TamperDetectionFiresPerUnit)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    const auto tile = tile_data(k_units, k_unit_bytes, 3);
    mem.write_units(make_writes(tile));

    // Corrupt exactly one unit in the middle of the tile.
    mem.tamper(0x1000 + 7 * k_unit_bytes, 13, 0x80);

    auto out = tile_data(k_units, k_unit_bytes, 999);
    const auto statuses = mem.read_units(make_reads(out));
    for (std::size_t i = 0; i < k_units; ++i) {
        if (i == 7)
            EXPECT_EQ(statuses[i], Verify_status::mac_mismatch);
        else
            EXPECT_EQ(statuses[i], Verify_status::ok) << "unit " << i;
    }
}

TEST(SecureMemoryBatch, ReplayDetectionFiresPerUnit)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    const auto tile = tile_data(k_units, k_unit_bytes, 4);
    mem.write_units(make_writes(tile));

    // Attacker snapshots one unit, the tile is rewritten, the old unit is
    // rolled back: stale-but-self-consistent data under a bumped VN.
    const Addr victim = 0x1000 + 5 * k_unit_bytes;
    const auto old = mem.snapshot(victim);
    const auto tile2 = tile_data(k_units, k_unit_bytes, 5);
    mem.write_units(make_writes(tile2));
    mem.rollback(victim, old);

    auto out = tile_data(k_units, k_unit_bytes, 999);
    const auto statuses = mem.read_units(make_reads(out));
    for (std::size_t i = 0; i < k_units; ++i) {
        if (i == 5)
            EXPECT_EQ(statuses[i], Verify_status::replay_detected);
        else
            EXPECT_EQ(statuses[i], Verify_status::ok) << "unit " << i;
    }
}

TEST(SecureMemoryBatch, BatchWriteBumpsVnPerUnit)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    const auto tile = tile_data(k_units, k_unit_bytes, 6);
    mem.write_units(make_writes(tile));
    mem.write_units(make_writes(tile));
    // Every unit was written twice; stored_vn reflects the per-unit counter.
    for (std::size_t i = 0; i < k_units; ++i)
        EXPECT_EQ(mem.snapshot(0x1000 + i * k_unit_bytes).stored_vn, 2u);
}

TEST(SecureMemoryBatch, EmptyBatchIsANoop)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    mem.write_units({});
    EXPECT_EQ(mem.unit_count(), 0u);
    EXPECT_TRUE(mem.read_units({}).empty());
}

TEST(SecureMemoryBatch, MisalignedUnitInBatchThrows)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    const auto tile = tile_data(1, k_unit_bytes, 7);
    std::vector<Secure_memory::Unit_write> batch = {{0x1001, tile[0], 0, 0, 0}};
    EXPECT_THROW(mem.write_units(batch), Seda_error);
}

}  // namespace
}  // namespace seda::core
