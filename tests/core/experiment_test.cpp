// Integration tests: the experiment harness must reproduce the paper's
// qualitative results (the Fig. 5 / Fig. 6 orderings) on both NPUs.
#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "core/experiment.h"

namespace seda::core {
namespace {

TEST(Factory, MakesAllSchemes)
{
    for (const char* id : {"baseline", "sgx-64", "sgx-512", "mgx-64", "mgx-512", "seda"}) {
        const auto s = make_scheme(id);
        ASSERT_NE(s, nullptr) << id;
        EXPECT_FALSE(s->name().empty());
    }
    EXPECT_THROW((void)make_scheme("tnpu"), Seda_error);
}

TEST(Factory, PaperSchemesMatchLegendOrder)
{
    const auto ids = paper_schemes();
    ASSERT_EQ(ids.size(), 5u);
    EXPECT_EQ(ids[0], "sgx-64");
    EXPECT_EQ(ids[1], "mgx-64");
    EXPECT_EQ(ids[2], "sgx-512");
    EXPECT_EQ(ids[3], "mgx-512");
    EXPECT_EQ(ids[4], "seda");
}

class SuiteOrderingTest : public ::testing::TestWithParam<std::string_view> {
protected:
    static Suite_result run_for(std::string_view npu_name)
    {
        const auto npu = npu_name == std::string_view("server")
                             ? accel::Npu_config::server()
                             : accel::Npu_config::edge();
        // A representative cross-section: conv-heavy, depthwise, attention,
        // gather-heavy.
        constexpr std::string_view models[] = {"rest", "mob", "trf", "dlrm", "yolo"};
        return run_suite(npu, paper_schemes(), models);
    }

    static std::map<std::string, double> avg_traffic(const Suite_result& s)
    {
        std::map<std::string, double> m;
        for (const auto& series : s.series) m[series.scheme] = series.avg_norm_traffic();
        return m;
    }
    static std::map<std::string, double> avg_perf(const Suite_result& s)
    {
        std::map<std::string, double> m;
        for (const auto& series : s.series) m[series.scheme] = series.avg_norm_perf();
        return m;
    }
};

TEST_P(SuiteOrderingTest, TrafficOrderingMatchesFig5)
{
    const auto t = avg_traffic(run_for(GetParam()));
    // Fig. 5: SGX-64B > SGX-512B > MGX-64B > MGX-512B > SeDA ~= 1.
    EXPECT_GT(t.at("sgx-64"), t.at("sgx-512"));
    EXPECT_GT(t.at("sgx-512"), t.at("mgx-64"));
    EXPECT_GT(t.at("mgx-64"), t.at("mgx-512"));
    EXPECT_GT(t.at("mgx-512"), t.at("seda"));
    EXPECT_LT(t.at("seda"), 1.01);
    EXPECT_GE(t.at("seda"), 1.0);
}

TEST_P(SuiteOrderingTest, PerformanceOrderingMatchesFig6)
{
    const auto p = avg_perf(run_for(GetParam()));
    // Fig. 6: SGX-64B < MGX-64B < SGX-512B < MGX-512B < SeDA; note the
    // crossover -- SGX-512B beats MGX-64B despite more traffic.
    EXPECT_LT(p.at("sgx-64"), p.at("mgx-64"));
    EXPECT_LT(p.at("mgx-64"), p.at("sgx-512"));
    EXPECT_LT(p.at("sgx-512"), p.at("mgx-512"));
    EXPECT_LT(p.at("mgx-512"), p.at("seda"));
}

TEST_P(SuiteOrderingTest, SedaIsNearBaseline)
{
    const auto s = run_for(GetParam());
    for (const auto& series : s.series) {
        if (series.scheme != "seda") continue;
        EXPECT_GT(series.avg_norm_perf(), 0.98);       // < 2% slowdown
        EXPECT_LT(series.avg_norm_traffic(), 1.005);   // < 0.5% traffic
    }
}

TEST_P(SuiteOrderingTest, HeadlineMagnitudesAreInBand)
{
    // The paper's averages: SGX-64B ~ +28-30% traffic / ~21-22% slowdown.
    // Allow generous bands; the *shape* is the reproduction target.
    const auto t = avg_traffic(run_for(GetParam()));
    const auto p = avg_perf(run_for(GetParam()));
    EXPECT_GT(t.at("sgx-64"), 1.20);
    EXPECT_LT(t.at("sgx-64"), 1.45);
    EXPECT_LT(p.at("sgx-64"), 0.90);
    EXPECT_GT(p.at("sgx-64"), 0.70);
    EXPECT_GT(t.at("mgx-64"), 1.10);
    EXPECT_LT(t.at("mgx-64"), 1.25);
}

INSTANTIATE_TEST_SUITE_P(BothNpus, SuiteOrderingTest,
                         ::testing::Values("server", "edge"),
                         [](const auto& pinfo) { return std::string(pinfo.param); });

TEST(Suite, EmptyModelListMeansAllThirteen)
{
    constexpr std::string_view one_scheme[] = {"seda"};
    const auto s = run_suite(accel::Npu_config::edge(), one_scheme);
    ASSERT_EQ(s.series.size(), 1u);
    EXPECT_EQ(s.series[0].points.size(), 13u);
}

TEST(Suite, NormalizationIsSelfConsistent)
{
    constexpr std::string_view schemes[] = {"baseline"};
    constexpr std::string_view models[] = {"let"};
    const auto s = run_suite(accel::Npu_config::server(), schemes, models);
    // Baseline normalized against itself is exactly 1.
    EXPECT_DOUBLE_EQ(s.series[0].points[0].norm_traffic, 1.0);
    EXPECT_DOUBLE_EQ(s.series[0].points[0].norm_perf, 1.0);
}

}  // namespace
}  // namespace seda::core
