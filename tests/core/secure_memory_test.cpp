// Functional secure memory: real crypto against a real memory adversary.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/secure_memory.h"

namespace seda::core {
namespace {

struct Keys {
    std::vector<u8> enc = std::vector<u8>(16);
    std::vector<u8> mac = std::vector<u8>(16);
    Keys()
    {
        Rng rng(0x5EC);
        for (auto& b : enc) b = rng.next_byte();
        for (auto& b : mac) b = rng.next_byte();
    }
};

std::vector<u8> unit_data(u64 seed, Bytes n = 64)
{
    Rng rng(seed);
    std::vector<u8> v(n);
    for (auto& b : v) b = rng.next_byte();
    return v;
}

TEST(SecureMemory, WriteReadRoundtrip)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    const auto plain = unit_data(1);
    mem.write(0x1000, plain, 0, 0, 0);

    std::vector<u8> out(64);
    EXPECT_EQ(mem.read(0x1000, out, 0, 0, 0), Verify_status::ok);
    EXPECT_EQ(out, plain);
}

TEST(SecureMemory, CiphertextIsNotPlaintext)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    const auto plain = unit_data(2);
    mem.write(0x1000, plain, 0, 0, 0);
    EXPECT_NE(mem.snapshot(0x1000).ciphertext, plain);
}

TEST(SecureMemory, RewriteBumpsVnAndChangesCiphertext)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    const auto plain = unit_data(3);
    mem.write(0x1000, plain, 0, 0, 0);
    const auto first = mem.snapshot(0x1000);
    mem.write(0x1000, plain, 0, 0, 0);  // same plaintext, new VN
    const auto second = mem.snapshot(0x1000);
    EXPECT_NE(first.ciphertext, second.ciphertext);  // temporal uniqueness
    EXPECT_NE(first.mac, second.mac);

    std::vector<u8> out(64);
    EXPECT_EQ(mem.read(0x1000, out, 0, 0, 0), Verify_status::ok);
    EXPECT_EQ(out, plain);
}

TEST(SecureMemory, TamperIsDetected)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    mem.write(0x1000, unit_data(4), 0, 0, 0);
    mem.tamper(0x1000, 17, 0x01);  // one flipped ciphertext bit
    std::vector<u8> out(64);
    EXPECT_EQ(mem.read(0x1000, out, 0, 0, 0), Verify_status::mac_mismatch);
}

TEST(SecureMemory, SwappedUnitsAreDetected)
{
    // The memory-level RePA move: exchange two encrypted units.  Positional
    // MACs bind PA, so both reads fail.
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    mem.write(0x1000, unit_data(5), 0, 0, 0);
    mem.write(0x2000, unit_data(6), 0, 0, 1);
    mem.swap_units(0x1000, 0x2000);
    std::vector<u8> out(64);
    EXPECT_NE(mem.read(0x1000, out, 0, 0, 0), Verify_status::ok);
    EXPECT_NE(mem.read(0x2000, out, 0, 0, 1), Verify_status::ok);
}

TEST(SecureMemory, ReplayDetectedWithOnchipVns)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    mem.write(0x1000, unit_data(7), 0, 0, 0);
    const auto old = mem.snapshot(0x1000);  // attacker snapshots v1
    mem.write(0x1000, unit_data(8), 0, 0, 0);  // victim writes v2
    mem.rollback(0x1000, old);                 // attacker replays v1
    std::vector<u8> out(64);
    EXPECT_EQ(mem.read(0x1000, out, 0, 0, 0), Verify_status::replay_detected);
}

TEST(SecureMemory, ReplaySucceedsWithOffchipVns)
{
    // The strawman: freshness state lives in the untrusted memory, so the
    // rollback is self-consistent and verification passes on stale data --
    // the reason MGX/TNPU/SeDA keep VNs on-chip.
    Keys k;
    Secure_memory::Config cfg;
    cfg.onchip_vns = false;
    Secure_memory mem(k.enc, k.mac, cfg);
    const auto v1 = unit_data(9);
    mem.write(0x1000, v1, 0, 0, 0);
    const auto old = mem.snapshot(0x1000);
    mem.write(0x1000, unit_data(10), 0, 0, 0);
    mem.rollback(0x1000, old);
    std::vector<u8> out(64);
    EXPECT_EQ(mem.read(0x1000, out, 0, 0, 0), Verify_status::ok);  // attack wins
    EXPECT_EQ(out, v1);  // ... and the accelerator consumes stale weights
}

TEST(SecureMemory, WrongPositionFieldsFailVerification)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    mem.write(0x1000, unit_data(11), /*layer=*/3, /*fmap=*/1, /*blk=*/7);
    std::vector<u8> out(64);
    EXPECT_EQ(mem.read(0x1000, out, 3, 1, 7), Verify_status::ok);
    EXPECT_EQ(mem.read(0x1000, out, 4, 1, 7), Verify_status::mac_mismatch);
    EXPECT_EQ(mem.read(0x1000, out, 3, 2, 7), Verify_status::mac_mismatch);
    EXPECT_EQ(mem.read(0x1000, out, 3, 1, 8), Verify_status::mac_mismatch);
}

TEST(SecureMemory, FoldAllMacsTracksContents)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    mem.write(0x1000, unit_data(12), 0, 0, 0);
    mem.write(0x2000, unit_data(13), 0, 0, 1);
    const u64 fold = mem.fold_all_macs();
    mem.write(0x2000, unit_data(14), 0, 0, 1);
    EXPECT_NE(mem.fold_all_macs(), fold);
    EXPECT_EQ(mem.unit_count(), 2u);
}

TEST(SecureMemory, WiderUnitsWork)
{
    Keys k;
    Secure_memory::Config cfg;
    cfg.unit_bytes = 512;
    Secure_memory mem(k.enc, k.mac, cfg);
    const auto plain = unit_data(15, 512);
    mem.write(0x4000, plain, 1, 0, 3);
    std::vector<u8> out(512);
    EXPECT_EQ(mem.read(0x4000, out, 1, 0, 3), Verify_status::ok);
    EXPECT_EQ(out, plain);
    mem.tamper(0x4000, 511, 0x80);
    EXPECT_EQ(mem.read(0x4000, out, 1, 0, 3), Verify_status::mac_mismatch);
}

TEST(SecureMemory, UsageErrors)
{
    Keys k;
    Secure_memory mem(k.enc, k.mac);
    std::vector<u8> out(64);
    EXPECT_THROW((void)mem.read(0x9000, out, 0, 0, 0), Seda_error);  // never written
    EXPECT_THROW(mem.write(0x1001, unit_data(1), 0, 0, 0), Seda_error);  // unaligned
    std::vector<u8> short_buf(32);
    EXPECT_THROW(mem.write(0x1000, short_buf, 0, 0, 0), Seda_error);
    Secure_memory::Config bad;
    bad.unit_bytes = 40;  // not a multiple of the AES block
    EXPECT_THROW(Secure_memory(k.enc, k.mac, bad), Seda_error);
}

}  // namespace
}  // namespace seda::core
