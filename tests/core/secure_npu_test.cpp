// End-to-end pricing pipeline invariants.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/secure_npu.h"
#include "models/zoo.h"

namespace seda::core {
namespace {

using accel::Npu_config;

TEST(SecureNpu, LayerTimeIsMaxOfEngines)
{
    const auto sim = accel::simulate_model(models::lenet(), Npu_config::server());
    protect::Baseline_scheme base;
    const auto stats = run_protected(sim, base);
    for (const auto& l : stats.layers) {
        EXPECT_GE(l.layer_cycles, l.compute_cycles) << l.layer_name;
        EXPECT_GE(l.layer_cycles, l.mem_cycles) << l.layer_name;
        EXPECT_GE(l.layer_cycles, l.crypto_cycles) << l.layer_name;
        EXPECT_EQ(l.layer_cycles,
                  std::max({l.compute_cycles, l.mem_cycles, l.crypto_cycles}))
            << l.layer_name;
    }
}

TEST(SecureNpu, TotalsAreLayerSums)
{
    const auto sim = accel::simulate_model(models::lenet(), Npu_config::server());
    protect::Baseline_scheme base;
    const auto stats = run_protected(sim, base);
    Cycles cycles = 0;
    Bytes traffic = 0;
    for (const auto& l : stats.layers) {
        cycles += l.layer_cycles;
        traffic += l.traffic_bytes;
    }
    EXPECT_EQ(stats.total_cycles, cycles);
    EXPECT_EQ(stats.traffic_bytes, traffic);
}

TEST(SecureNpu, BaselineHasNoCryptoTime)
{
    const auto sim = accel::simulate_model(models::lenet(), Npu_config::server());
    protect::Baseline_scheme base;
    const auto stats = run_protected(sim, base);
    for (const auto& l : stats.layers) EXPECT_EQ(l.crypto_cycles, 0u);
}

TEST(SecureNpu, ProtectionNeverSpeedsThingsUp)
{
    const auto sim = accel::simulate_model(models::alexnet(), Npu_config::edge());
    protect::Baseline_scheme base;
    const auto base_stats = run_protected(sim, base);
    for (const char* id : {"sgx-64", "sgx-512", "mgx-64", "mgx-512", "seda"}) {
        auto scheme = make_scheme(id);
        const auto stats = run_protected(sim, *scheme);
        EXPECT_GE(stats.total_cycles, base_stats.total_cycles) << id;
        EXPECT_GE(stats.traffic_bytes, base_stats.traffic_bytes) << id;
    }
}

TEST(SecureNpu, TrafficMatchesTagBreakdown)
{
    const auto sim = accel::simulate_model(models::resnet18(), Npu_config::server());
    auto scheme = make_scheme("sgx-64");
    const auto stats = run_protected(sim, *scheme);
    Bytes tag_sum = 0;
    for (const Bytes b : stats.bytes_by_tag) tag_sum += b;
    EXPECT_EQ(tag_sum, stats.traffic_bytes);
    EXPECT_GT(stats.bytes_by_tag[static_cast<int>(dram::Traffic_tag::mac)], 0u);
    EXPECT_GT(stats.prefetch_bytes, 0u);  // SGX VN + tree
}

TEST(SecureNpu, StallsRaiseMemoryTime)
{
    const auto sim = accel::simulate_model(models::resnet18(), Npu_config::server());
    auto scheme = make_scheme("mgx-64");
    protect::Perf_params no_stall;
    no_stall.stall_cycles_per_mac_miss = 0.0;
    protect::Perf_params stall;
    stall.stall_cycles_per_mac_miss = 50.0;
    const auto fast = run_protected(sim, *scheme, no_stall);
    const auto slow = run_protected(sim, *scheme, stall);
    EXPECT_GT(slow.total_cycles, fast.total_cycles);
    EXPECT_EQ(slow.traffic_bytes, fast.traffic_bytes);  // time-only knob
}

TEST(SecureNpu, PrefetchDiscountScalesVnTime)
{
    const auto sim = accel::simulate_model(models::resnet18(), Npu_config::server());
    auto scheme = make_scheme("sgx-64");
    protect::Perf_params cheap;
    cheap.vn_prefetch_discount = 0.0;
    protect::Perf_params expensive;
    expensive.vn_prefetch_discount = 1.0;
    const auto fast = run_protected(sim, *scheme, cheap);
    const auto slow = run_protected(sim, *scheme, expensive);
    EXPECT_GT(slow.total_cycles, fast.total_cycles);
}

TEST(SecureNpu, RowHitRateIsSane)
{
    const auto sim = accel::simulate_model(models::resnet18(), Npu_config::server());
    protect::Baseline_scheme base;
    const auto stats = run_protected(sim, base);
    EXPECT_GT(stats.dram_row_hit_rate, 0.5);  // streaming workload
    EXPECT_LE(stats.dram_row_hit_rate, 1.0);
}

TEST(SecureNpu, EdgeIsSlowerInWallclock)
{
    const auto server = accel::simulate_model(models::resnet18(), Npu_config::server());
    const auto edge = accel::simulate_model(models::resnet18(), Npu_config::edge());
    protect::Baseline_scheme b1;
    protect::Baseline_scheme b2;
    const auto s = run_protected(server, b1);
    const auto e = run_protected(edge, b2);
    EXPECT_GT(e.seconds(Npu_config::edge().freq_ghz),
              s.seconds(Npu_config::server().freq_ghz));
}

TEST(SecureNpu, RunLabelsCarryContext)
{
    const auto sim = accel::simulate_model(models::lenet(), Npu_config::edge());
    auto scheme = make_scheme("seda");
    const auto stats = run_protected(sim, *scheme);
    EXPECT_EQ(stats.scheme_name, "seda");
    EXPECT_EQ(stats.model_name, "lenet");
    EXPECT_EQ(stats.npu_name, "edge-exynos-990");
    EXPECT_EQ(stats.layers.size(), sim.layers.size() + 1);  // + end-of-model
}

}  // namespace
}  // namespace seda::core
