// Secure model provisioning: image build, model-MAC verification, tamper
// detection, layer decryption.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/provision.h"
#include "models/zoo.h"

namespace seda::core {
namespace {

struct Fixture {
    accel::Model_desc model = models::lenet();
    std::vector<u8> weights;
    std::vector<u8> enc_key = std::vector<u8>(16);
    std::vector<u8> mac_key = std::vector<u8>(16);

    Fixture()
    {
        Rng rng(0x9107);
        weights.resize(image_bytes(model));
        for (auto& b : weights) b = rng.next_byte();
        for (auto& b : enc_key) b = rng.next_byte();
        for (auto& b : mac_key) b = rng.next_byte();
    }
};

TEST(Provision, ImageBytesIsPaddedSum)
{
    const auto model = models::lenet();
    Bytes expected = 0;
    for (const auto& l : model.layers) expected += align_up(l.weight_bytes(), k_block_bytes);
    EXPECT_EQ(image_bytes(model), expected);
}

TEST(Provision, FreshImageVerifies)
{
    Fixture f;
    const auto image = provision_model(f.model, f.weights, f.enc_key, f.mac_key);
    EXPECT_TRUE(verify_image(image, f.mac_key));
    EXPECT_EQ(image.layers.size(), f.model.layers.size());
    EXPECT_EQ(image.layer_macs.size(), f.model.layers.size());
    EXPECT_EQ(image.ciphertext.size(), f.weights.size());
}

TEST(Provision, CiphertextDiffersFromPlaintext)
{
    Fixture f;
    const auto image = provision_model(f.model, f.weights, f.enc_key, f.mac_key);
    EXPECT_NE(image.ciphertext, f.weights);
}

TEST(Provision, ModelMacIsFoldOfLayerMacs)
{
    // XOR-folding is hierarchical: the model MAC equals the fold of the
    // per-layer folds (Fig. 3(b): optBlk MAC -> layer MAC -> model MAC).
    Fixture f;
    const auto image = provision_model(f.model, f.weights, f.enc_key, f.mac_key);
    u64 fold = 0;
    for (const u64 m : image.layer_macs) fold ^= m;
    EXPECT_EQ(fold, image.model_mac);
}

TEST(Provision, AnyTamperedByteFailsVerification)
{
    Fixture f;
    auto image = provision_model(f.model, f.weights, f.enc_key, f.mac_key);
    // Flip one bit in the middle of layer 2's span.
    image.ciphertext[image.ciphertext.size() / 2] ^= 0x04;
    EXPECT_FALSE(verify_image(image, f.mac_key));
}

TEST(Provision, TamperedLayerMacTableFails)
{
    Fixture f;
    auto image = provision_model(f.model, f.weights, f.enc_key, f.mac_key);
    image.layer_macs[1] ^= 1;
    EXPECT_FALSE(verify_image(image, f.mac_key));
}

TEST(Provision, WrongMacKeyFails)
{
    Fixture f;
    const auto image = provision_model(f.model, f.weights, f.enc_key, f.mac_key);
    auto wrong = f.mac_key;
    wrong[0] ^= 1;
    EXPECT_FALSE(verify_image(image, wrong));
}

TEST(Provision, DecryptLayerRecoversWeights)
{
    Fixture f;
    const auto image = provision_model(f.model, f.weights, f.enc_key, f.mac_key);

    Bytes cursor = 0;
    for (u32 i = 0; i < f.model.layers.size(); ++i) {
        const Bytes padded = align_up(f.model.layers[i].weight_bytes(), k_block_bytes);
        const auto plain = decrypt_layer(image, i, f.enc_key);
        ASSERT_EQ(plain.size(), padded);
        EXPECT_TRUE(std::equal(plain.begin(), plain.end(),
                               f.weights.begin() + static_cast<std::ptrdiff_t>(cursor)))
            << "layer " << i;
        cursor += padded;
    }
}

TEST(Provision, DecryptUnknownLayerThrows)
{
    Fixture f;
    const auto image = provision_model(f.model, f.weights, f.enc_key, f.mac_key);
    EXPECT_THROW((void)decrypt_layer(image, 999, f.enc_key), Seda_error);
}

TEST(Provision, WrongWeightSizeThrows)
{
    Fixture f;
    f.weights.pop_back();
    EXPECT_THROW((void)provision_model(f.model, f.weights, f.enc_key, f.mac_key),
                 Seda_error);
}

TEST(Provision, LayerSpansMatchMemoryMap)
{
    Fixture f;
    const auto image = provision_model(f.model, f.weights, f.enc_key, f.mac_key);
    const accel::Memory_map map(f.model);
    for (std::size_t i = 0; i < image.layers.size(); ++i) {
        EXPECT_EQ(image.layers[i].base, map.weight_addr[i]);
        EXPECT_EQ(image.layers[i].layer_id, i);
    }
}

TEST(Provision, WorksAcrossModels)
{
    Rng rng(0x7777);
    for (const char* name : {"alex", "yolo", "ncf"}) {
        const auto model = models::model_by_name(name);
        std::vector<u8> weights(image_bytes(model));
        for (auto& b : weights) b = rng.next_byte();
        std::vector<u8> key(16, 0x21);
        const auto image = provision_model(model, weights, key, key);
        EXPECT_TRUE(verify_image(image, key)) << name;
    }
}

}  // namespace
}  // namespace seda::core
