// The 13-workload zoo: construction, registry, architecture sanity.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "models/zoo.h"

namespace seda::models {
namespace {

using accel::Layer_kind;

TEST(Zoo, HasThirteenWorkloadsInPaperOrder)
{
    const auto zoo = all_models();
    ASSERT_EQ(zoo.size(), 13u);
    const char* expected[] = {"let",  "alex", "mob", "rest", "goo",  "dlrm", "algo",
                              "ds2",  "fast", "ncf", "sent", "trf",  "yolo"};
    for (std::size_t i = 0; i < zoo.size(); ++i) EXPECT_EQ(zoo[i].short_name, expected[i]);
}

class ZooModelTest : public ::testing::TestWithParam<std::string_view> {};

TEST_P(ZooModelTest, BuildsAndValidates)
{
    const auto m = model_by_name(GetParam());
    EXPECT_FALSE(m.layers.empty());
    for (const auto& l : m.layers) EXPECT_NO_THROW(l.validate()) << l.name;
}

TEST_P(ZooModelTest, LayerNamesUnique)
{
    const auto m = model_by_name(GetParam());
    std::set<std::string> names;
    for (const auto& l : m.layers) EXPECT_TRUE(names.insert(l.name).second) << l.name;
}

TEST_P(ZooModelTest, HasParametersAndWork)
{
    const auto m = model_by_name(GetParam());
    EXPECT_GT(m.total_weight_bytes(), 0u);
    EXPECT_GT(m.total_macs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooModelTest,
                         ::testing::Values("let", "alex", "mob", "rest", "goo", "dlrm",
                                           "algo", "ds2", "fast", "ncf", "sent", "trf",
                                           "yolo"));

TEST(Zoo, LookupByFullName)
{
    EXPECT_EQ(model_by_name("resnet18").name, "resnet18");
    EXPECT_EQ(model_by_name("rest").name, "resnet18");
    EXPECT_THROW((void)model_by_name("vgg99"), Seda_error);
}

TEST(Zoo, ArchitectureAnchors)
{
    // Spot checks against the published architectures.
    const auto alex = alexnet();
    EXPECT_EQ(alex.layers[0].c_out, 96);   // conv1: 96 11x11 filters
    EXPECT_EQ(alex.layers[0].stride, 4);

    const auto mob = mobilenet();
    int dw = 0;
    for (const auto& l : mob.layers)
        if (l.kind == Layer_kind::dwconv) ++dw;
    EXPECT_EQ(dw, 13);  // 13 depthwise-separable blocks

    const auto goo = googlenet();
    int convs = 0;
    for (const auto& l : goo.layers)
        if (l.kind == Layer_kind::conv) ++convs;
    EXPECT_EQ(convs, 3 + 9 * 6);  // stem + 9 inception modules x 6 convs

    const auto d = dlrm();
    int embeddings = 0;
    for (const auto& l : d.layers)
        if (l.kind == Layer_kind::embedding) ++embeddings;
    EXPECT_EQ(embeddings, 26);

    const auto yolo = yolo_tiny();
    EXPECT_EQ(yolo.layers.front().ifmap_h, 418);  // 416 + same-padding
    EXPECT_EQ(yolo.layers.back().c_out, 125);     // 5 anchors x 25

    const auto trf = transformer_fwd();
    int matmuls = 0;
    for (const auto& l : trf.layers)
        if (l.kind == Layer_kind::matmul) ++matmuls;
    EXPECT_EQ(matmuls, 6 * 6 + 1);  // 6 GEMMs per encoder layer + LM head
}

TEST(Zoo, ResNetChainsSpatially)
{
    // Output spatial dims of each stage follow the 56/28/14/7 ladder.
    const auto m = resnet18();
    EXPECT_EQ(m.layers[0].ofmap_h(), 112);
    bool saw28 = false;
    bool saw7 = false;
    for (const auto& l : m.layers) {
        if (l.kind != Layer_kind::conv) continue;
        if (l.ofmap_h() == 28) saw28 = true;
        if (l.ofmap_h() == 7) saw7 = true;
    }
    EXPECT_TRUE(saw28);
    EXPECT_TRUE(saw7);
}

TEST(Zoo, WeightFootprintsAreRealistic)
{
    // 1-byte elements: AlexNet ~60M params, ResNet-18 ~11M, LeNet well under 1M.
    EXPECT_NEAR(static_cast<double>(alexnet().total_weight_bytes()), 60e6, 10e6);
    EXPECT_NEAR(static_cast<double>(resnet18().total_weight_bytes()), 11e6, 3e6);
    EXPECT_LT(lenet().total_weight_bytes(), 1u << 20);
}

}  // namespace
}  // namespace seda::models
