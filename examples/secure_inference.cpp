// Secure inference: protects a real workload end to end and breaks the cost
// down per layer -- the view a deployment engineer would want before turning
// memory protection on.
//
// Usage:  ./build/examples/secure_inference [model] [npu] [scheme]
//   model  - zoo name (default: resnet18); see models/zoo.h for all 13
//   npu    - "server" or "edge" (default: server)
//   scheme - baseline | sgx-64 | sgx-512 | mgx-64 | mgx-512 | seda (default)
#include <iostream>
#include <string>

#include "accel/accel_sim.h"
#include "common/table.h"
#include "core/experiment.h"
#include "models/zoo.h"

using namespace seda;

int main(int argc, char** argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "resnet18";
    const std::string npu_name = argc > 2 ? argv[2] : "server";
    const std::string scheme_id = argc > 3 ? argv[3] : "seda";

    const auto npu =
        npu_name == "edge" ? accel::Npu_config::edge() : accel::Npu_config::server();
    const auto sim = accel::simulate_model(models::model_by_name(model_name), npu);

    protect::Baseline_scheme baseline;
    const auto base = core::run_protected(sim, baseline);
    auto scheme = core::make_scheme(scheme_id);
    const auto stats = core::run_protected(sim, *scheme);

    std::cout << "model: " << model_name << "  npu: " << npu.name
              << "  scheme: " << scheme_id << "\n"
              << "array: " << npu.array_rows << "x" << npu.array_cols << " @ "
              << npu.freq_ghz << " GHz, SRAM " << fmt_bytes(npu.sram_bytes)
              << ", DRAM " << npu.dram_bw_gbps << " GB/s\n\n";

    Ascii_table table({"layer", "compute_cyc", "mem_cyc", "layer_cyc", "traffic",
                       "verify_events"});
    for (const auto& l : stats.layers) {
        if (l.layer_cycles == 0 && l.traffic_bytes == 0) continue;
        table.add_row({l.layer_name, std::to_string(l.compute_cycles),
                       std::to_string(l.mem_cycles), std::to_string(l.layer_cycles),
                       fmt_bytes(l.traffic_bytes), std::to_string(l.verify_events)});
    }
    table.print(std::cout);

    const double slowdown = static_cast<double>(stats.total_cycles) /
                                static_cast<double>(base.total_cycles) -
                            1.0;
    const double traffic_oh = static_cast<double>(stats.traffic_bytes) /
                                  static_cast<double>(base.traffic_bytes) -
                              1.0;
    std::cout << "\ntotal: " << stats.total_cycles << " cycles ("
              << fmt_f(stats.seconds(npu.freq_ghz) * 1e3, 3) << " ms), traffic "
              << fmt_bytes(stats.traffic_bytes) << "\n"
              << "vs baseline: slowdown " << fmt_pct(slowdown) << ", traffic overhead "
              << fmt_pct(traffic_oh) << ", DRAM row-hit rate "
              << fmt_pct(stats.dram_row_hit_rate) << "\n";
    return 0;
}
