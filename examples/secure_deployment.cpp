// Secure deployment walkthrough: the full life of a protected model.
//
//   1. Provision: encrypt the weights per authentication block, fold the
//      on-chip model MAC (Fig. 3(b)).
//   2. Deploy into untrusted memory and verify the image like the
//      accelerator would while streaming.
//   3. Run inference traffic through Secure_memory with real crypto.
//   4. Attack: tamper, swap, and replay -- and show what each configuration
//      catches (Sec. II-D threat model).
//
// Build & run:  ./build/examples/secure_deployment
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "core/provision.h"
#include "core/secure_memory.h"
#include "models/zoo.h"

using namespace seda;
using core::Verify_status;

int main()
{
    Rng rng(0xDEB107);
    std::vector<u8> enc_key(16);
    std::vector<u8> mac_key(16);
    for (auto& b : enc_key) b = rng.next_byte();
    for (auto& b : mac_key) b = rng.next_byte();

    // --- 1. provision ------------------------------------------------------
    const auto model = models::lenet();
    std::vector<u8> weights(core::image_bytes(model));
    for (auto& b : weights) b = rng.next_byte();

    const auto image = core::provision_model(model, weights, enc_key, mac_key);
    std::cout << "provisioned '" << model.name << "': " << fmt_bytes(weights.size())
              << " of weights, " << image.layers.size() << " layers, model MAC 0x"
              << std::hex << image.model_mac << std::dec << "\n";

    // --- 2. verify the deployed image --------------------------------------
    std::cout << "image verifies clean: "
              << (core::verify_image(image, mac_key) ? "yes" : "NO") << "\n";
    auto tampered = image;
    tampered.ciphertext[42] ^= 0x80;
    std::cout << "tampered image rejected: "
              << (core::verify_image(tampered, mac_key) ? "NO" : "yes") << "\n\n";

    // --- 3 + 4. runtime traffic and attacks --------------------------------
    core::Secure_memory mem(enc_key, mac_key);
    std::vector<u8> tile(64);
    for (auto& b : tile) b = rng.next_byte();
    mem.write(0x8000'0000, tile, /*layer=*/0, /*fmap=*/0, /*blk=*/0);
    mem.write(0x8000'0040, tile, 0, 0, 1);

    Ascii_table table({"attack", "freshness", "result"});
    std::vector<u8> out(64);

    mem.tamper(0x8000'0000, 5, 0x10);
    table.add_row({"bit flip", "on-chip VNs",
                   core::to_string(mem.read(0x8000'0000, out, 0, 0, 0))});
    mem.write(0x8000'0000, tile, 0, 0, 0);  // victim rewrites cleanly

    mem.swap_units(0x8000'0000, 0x8000'0040);
    table.add_row({"unit swap (RePA)", "on-chip VNs",
                   core::to_string(mem.read(0x8000'0000, out, 0, 0, 0))});
    mem.swap_units(0x8000'0000, 0x8000'0040);  // undo

    const auto old = mem.snapshot(0x8000'0000);
    mem.write(0x8000'0000, std::vector<u8>(64, 0x7F), 0, 0, 0);
    mem.rollback(0x8000'0000, old);
    table.add_row({"rollback (replay)", "on-chip VNs",
                   core::to_string(mem.read(0x8000'0000, out, 0, 0, 0))});

    // Same replay against the strawman that stores VNs off-chip.
    core::Secure_memory::Config weak_cfg;
    weak_cfg.onchip_vns = false;
    core::Secure_memory weak(enc_key, mac_key, weak_cfg);
    weak.write(0x8000'0000, tile, 0, 0, 0);
    const auto weak_old = weak.snapshot(0x8000'0000);
    weak.write(0x8000'0000, std::vector<u8>(64, 0x7F), 0, 0, 0);
    weak.rollback(0x8000'0000, weak_old);
    table.add_row({"rollback (replay)", "off-chip VNs (strawman)",
                   std::string(core::to_string(weak.read(0x8000'0000, out, 0, 0, 0))) +
                       "  <- stale data accepted!"});

    table.print(std::cout);
    std::cout << "\nOn-chip freshness state (MGX/TNPU/SeDA-style) is what turns the\n"
                 "replay from silent corruption into a detected fault.\n";
    return 0;
}
