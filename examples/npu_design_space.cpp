// Design-space sweep: how does each protection scheme scale as the NPU's
// memory bandwidth grows?  This exercises the paper's scalability claim --
// SeDA's overhead stays near zero while unit-MAC schemes keep paying, and
// the crypto hardware needed to keep up is one AES engine plus XOR lanes
// (B-AES) instead of a linearly growing engine farm (T-AES).
//
// Usage:  ./build/examples/npu_design_space [model]   (default: yolo_tiny)
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/experiment.h"
#include "crypto/engine_model.h"

using namespace seda;

int main(int argc, char** argv)
{
    const std::string model = argc > 1 ? argv[1] : "yolo_tiny";
    const std::string_view models[] = {std::string_view(model)};

    std::cout << "Protection overhead vs NPU memory bandwidth (" << model << ")\n\n";
    Ascii_table table({"bw_gbps", "scheme", "traffic_overhead", "slowdown",
                       "baes_area_um2", "t_aes_area_um2"});

    for (const double bw : {10.0, 20.0, 40.0, 80.0}) {
        auto npu = accel::Npu_config::server();
        npu.dram_bw_gbps = bw;
        npu.name = "server-" + fmt_f(bw, 0) + "GBps";

        const auto suite = core::run_suite(npu, core::paper_schemes(), models);
        const double mult = npu.link_bytes_per_npu_cycle() / 16.0;
        const auto b = crypto::b_aes_cost(std::max(1.0, mult));
        const auto t = crypto::t_aes_cost(std::max(1.0, mult));

        for (const auto& s : suite.series) {
            if (s.scheme != "sgx-64" && s.scheme != "mgx-512" && s.scheme != "seda")
                continue;
            table.add_row({fmt_f(bw, 0), s.scheme,
                           fmt_pct(s.avg_norm_traffic() - 1.0),
                           fmt_pct(1.0 - s.avg_norm_perf()), fmt_f(b.area_um2, 0),
                           fmt_f(t.area_um2, 0)});
        }
    }
    table.print(std::cout);

    std::cout << "\nSeDA's traffic overhead is bandwidth-independent (layer MACs only)\n"
                 "and its crypto area grows by XOR lanes, not AES engines.\n";
    return 0;
}
