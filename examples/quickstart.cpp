// Quickstart: the five-minute tour of the SeDA library.
//
//  1. Functional crypto: encrypt a DNN tensor with B-AES, MAC it with the
//     positional block MAC, fold a layer MAC, verify, and watch a tampered
//     byte get caught.
//  2. System simulation: run a small CNN through the secure-NPU pipeline on
//     the edge NPU under SeDA and compare against the unprotected baseline.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <vector>

#include "accel/accel_sim.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/experiment.h"
#include "crypto/baes.h"
#include "crypto/mac.h"

using namespace seda;

namespace {

void crypto_roundtrip()
{
    std::cout << "--- 1. functional crypto roundtrip ---------------------------\n";
    // A 256-byte "tensor tile" with ReLU-style sparsity.
    Rng rng(2024);
    std::vector<u8> tensor(256);
    for (auto& b : tensor) b = rng.next_unit() < 0.5 ? 0 : rng.next_byte();
    const std::vector<u8> original = tensor;

    // Encrypt in place with B-AES: one AES invocation per 64 B unit, pads
    // fanned out from keyExpansion round keys.
    std::vector<u8> key(16, 0x5E);
    const crypto::Baes_engine baes(key);
    const Addr pa = 0x8000'0000;
    const u64 vn = 1;
    baes.crypt(tensor, pa, vn);
    std::cout << "encrypted 256 B tile at PA=0x" << std::hex << pa << std::dec
              << " VN=" << vn << "\n";

    // Positional block MACs folded into a layer MAC (Alg. 2 defense).
    crypto::Xor_mac_accumulator layer_mac;
    for (u32 blk = 0; blk < 4; ++blk) {
        crypto::Mac_context ctx{pa + blk * 64, vn, /*layer=*/0, /*fmap=*/0, blk};
        layer_mac.fold(crypto::positional_block_mac(
            key, std::span<const u8>(tensor).subspan(blk * 64, 64), ctx));
    }
    const u64 stored = layer_mac.value();

    // Decrypt (same operation) and verify.
    baes.crypt(tensor, pa, vn);
    std::cout << "decrypt matches original: " << (tensor == original ? "yes" : "NO")
              << "\n";

    // Tamper with one ciphertext byte and re-verify the layer MAC.
    baes.crypt(tensor, pa, vn);  // re-encrypt
    tensor[100] ^= 0x01;
    crypto::Xor_mac_accumulator check;
    for (u32 blk = 0; blk < 4; ++blk) {
        crypto::Mac_context ctx{pa + blk * 64, vn, 0, 0, blk};
        check.fold(crypto::positional_block_mac(
            key, std::span<const u8>(tensor).subspan(blk * 64, 64), ctx));
    }
    std::cout << "tampered bit detected: " << (check.value() != stored ? "yes" : "NO")
              << "\n\n";
}

void simulate_small_cnn()
{
    std::cout << "--- 2. secure-NPU simulation ---------------------------------\n";
    accel::Model_desc model;
    model.name = "tiny-cnn";
    model.layers = {
        accel::Layer_desc::make_conv("conv1", 34, 34, 3, 3, 3, 16, 1),
        accel::Layer_desc::make_conv("conv2", 34, 34, 16, 3, 3, 32, 1),
        accel::Layer_desc::make_pool("pool", 32, 32, 32, 2, 2),
        accel::Layer_desc::make_fc("fc", 16 * 16 * 32, 10),
    };

    const auto npu = accel::Npu_config::edge();
    const auto sim = accel::simulate_model(model, npu);

    Ascii_table table({"scheme", "cycles", "traffic", "verify_events", "slowdown"});
    core::Run_stats base;
    for (const std::string id : {"baseline", "sgx-64", "seda"}) {
        auto scheme = core::make_scheme(id);
        const auto stats = core::run_protected(sim, *scheme);
        if (id == "baseline") base = stats;
        const double slowdown = base.total_cycles == 0
                                    ? 0.0
                                    : static_cast<double>(stats.total_cycles) /
                                              static_cast<double>(base.total_cycles) -
                                          1.0;
        table.add_row({id, std::to_string(stats.total_cycles),
                       fmt_bytes(stats.traffic_bytes),
                       std::to_string(stats.verify_events), fmt_pct(slowdown)});
    }
    table.print(std::cout);
    std::cout << "\nSeDA protects the same traffic with near-zero overhead; see\n"
                 "examples/secure_inference for the full 13-workload comparison.\n";
}

}  // namespace

int main()
{
    crypto_roundtrip();
    simulate_small_cnn();
    return 0;
}
