// Attack demo: runs the paper's two attacks (Algorithms 1 and 2) against
// both the vulnerable designs and the SeDA defenses, with real crypto.
//
//  SECA  - Single-Element Collision Attack against shared-OTP encryption of
//          a sparse DNN tensor; defeated by B-AES per-segment pads.
//  RePA  - Re-Permutation Attack against a commutative XOR-MAC layer MAC
//          built from ciphertext-only block MACs; defeated by the
//          positional MAC that binds PA, VN, layer, fmap and block indices.
//
// Build & run:  ./build/examples/attack_demo
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "crypto/attacks.h"
#include "crypto/baes.h"

using namespace seda;
using namespace seda::crypto;

namespace {

void demo_seca()
{
    std::cout << "=== SECA: Single-Element Collision Attack (Algorithm 1) ===\n\n";
    Rng rng(99);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();

    // A 4 KiB activation block: 70% of 16 B segments are all-zero (ReLU).
    const auto plaintext = make_sparse_plaintext(4096, 0.7, rng);
    const Addr pa = 0x8000'1000;
    const u64 vn = 17;
    const Block16 guess{};  // the attacker guesses "most frequent value = 0"

    Ascii_table table({"encryption", "segments", "recovered", "rate", "attack"});

    // Vulnerable: one OTP shared by all 256 segments.
    {
        const Aes_ctr ctr(key);
        auto cipher = plaintext;
        ctr.crypt_shared_otp(cipher, pa, vn);
        const auto r = seca_attack(cipher, guess, plaintext);
        table.add_row({"shared OTP", std::to_string(r.segments),
                       std::to_string(r.recovered), fmt_pct(r.recovery_rate()),
                       r.success() ? "SUCCEEDS" : "fails"});
    }
    // Defense: B-AES per-segment pads from keyExpansion round keys.
    {
        const Baes_engine baes(key);
        auto cipher = plaintext;
        baes.crypt(cipher, pa, vn);
        const auto r = seca_attack(cipher, guess, plaintext);
        table.add_row({"B-AES (SeDA)", std::to_string(r.segments),
                       std::to_string(r.recovered), fmt_pct(r.recovery_rate()),
                       r.success() ? "SUCCEEDS" : "fails"});
    }
    table.print(std::cout);
    std::cout << "\nWith a shared OTP the attacker XORs the most frequent ciphertext\n"
                 "with the guessed plaintext and strips the whole block; B-AES gives\n"
                 "every 16 B segment its own pad, so the collision reveals nothing.\n\n";
}

void demo_repa()
{
    std::cout << "=== RePA: Re-Permutation Attack (Algorithm 2) ===\n\n";
    Rng rng(7);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();

    // One layer: 32 encrypted 64 B blocks.
    std::vector<std::vector<u8>> blocks;
    std::vector<Addr> addrs;
    std::vector<u64> vns;
    for (u32 i = 0; i < 32; ++i) {
        std::vector<u8> blk(64);
        for (auto& b : blk) b = rng.next_byte();
        blocks.push_back(std::move(blk));
        addrs.push_back(0xA000'0000 + i * 64);
        vns.push_back(3);
    }

    Ascii_table table({"layer MAC scheme", "verification", "data", "attack"});
    for (const auto kind : {Layer_mac_kind::naive_xor, Layer_mac_kind::positional_xor}) {
        Rng attack_rng(1234);
        const auto r = repa_attack(blocks, addrs, vns, /*layer_id=*/5, key, kind,
                                   attack_rng);
        table.add_row({kind == Layer_mac_kind::naive_xor ? "ciphertext-only XOR-MAC"
                                                         : "positional XOR-MAC (SeDA)",
                       r.verification_passed ? "PASSES" : "rejected",
                       r.data_intact ? "intact" : "corrupted",
                       r.attack_succeeded() ? "SUCCEEDS" : "fails"});
    }
    table.print(std::cout);
    std::cout << "\nXOR is commutative: shuffling blocks preserves a ciphertext-only\n"
                 "layer MAC while the accelerator consumes permuted data.  Binding\n"
                 "blk||PA||VN||layer||fmap||blk_idx into each MAC (Alg. 2, defense)\n"
                 "makes any permutation change the fold.\n";
}

}  // namespace

int main()
{
    demo_seca();
    demo_repa();
    return 0;
}
